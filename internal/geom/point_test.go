package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, -4)), Pt(4, -2)},
		{"sub", Pt(1, 2).Sub(Pt(3, -4)), Pt(-2, 6)},
		{"scale", Pt(1.5, -2).Scale(2), Pt(3, -4)},
		{"lerp-start", Pt(0, 0).Lerp(Pt(10, 20), 0), Pt(0, 0)},
		{"lerp-end", Pt(0, 0).Lerp(Pt(10, 20), 1), Pt(10, 20)},
		{"lerp-mid", Pt(0, 0).Lerp(Pt(10, 20), 0.5), Pt(5, 10)},
		{"midpoint", Midpoint(Pt(-2, 0), Pt(4, 6)), Pt(1, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.AlmostEqual(tt.want, 1e-12) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestPointDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if got := p.Dist(q); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.DistSq(q); math.Abs(got-25) > 1e-12 {
		t.Errorf("DistSq = %v, want 25", got)
	}
	if got := q.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := q.NormSq(); math.Abs(got-25) > 1e-12 {
		t.Errorf("NormSq = %v, want 25", got)
	}
}

func TestDotCross(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, 4)
	if got := a.Dot(b); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := a.Cross(b); got != -2 {
		t.Errorf("Cross = %v, want -2", got)
	}
}

func TestUnit(t *testing.T) {
	u, ok := Pt(3, 4).Unit()
	if !ok {
		t.Fatal("Unit of nonzero vector reported not ok")
	}
	if !u.AlmostEqual(Pt(0.6, 0.8), 1e-12) {
		t.Errorf("Unit = %v, want (0.6, 0.8)", u)
	}
	if _, ok := Pt(0, 0).Unit(); ok {
		t.Error("Unit of zero vector reported ok")
	}
}

func TestRotate(t *testing.T) {
	got := Pt(1, 0).Rotate(math.Pi / 2)
	if !got.AlmostEqual(Pt(0, 1), 1e-12) {
		t.Errorf("Rotate(pi/2) = %v, want (0,1)", got)
	}
	got = Pt(2, 0).RotateAround(Pt(1, 0), math.Pi)
	if !got.AlmostEqual(Pt(0, 0), 1e-12) {
		t.Errorf("RotateAround = %v, want (0,0)", got)
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("Centroid(nil) reported ok")
	}
	c, ok := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(1, 3)})
	if !ok || !c.AlmostEqual(Pt(1, 1), 1e-12) {
		t.Errorf("Centroid = %v ok=%v, want (1,1) true", c, ok)
	}
}

func TestDedupPoints(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(0, 1e-9), Pt(1, 1), Pt(1, 1), Pt(2, 2)}
	got := DedupPoints(pts, 1e-6)
	if len(got) != 3 {
		t.Fatalf("DedupPoints kept %d points, want 3: %v", len(got), got)
	}
	if !got[0].AlmostEqual(Pt(0, 0), 0) || !got[1].AlmostEqual(Pt(1, 1), 0) || !got[2].AlmostEqual(Pt(2, 2), 0) {
		t.Errorf("DedupPoints order/content wrong: %v", got)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistProperties(t *testing.T) {
	sym := func(ax, ay, bx, by float64) bool {
		a, b := clampPt(ax, ay), clampPt(bx, by)
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-9
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	tri := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := clampPt(ax, ay), clampPt(bx, by), clampPt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

// Property: rotation preserves norms.
func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		p := clampPt(x, y)
		th := math.Mod(theta, 2*math.Pi)
		return math.Abs(p.Rotate(th).Norm()-p.Norm()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampPt maps arbitrary quick-generated floats into a sane finite range so
// properties are not voided by infinities or catastrophic magnitudes.
func clampPt(x, y float64) Point {
	c := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	return Pt(c(x), c(y))
}
