package geom

import (
	"fmt"
	"math"
)

// Circle is a circle (and, in containment queries, the closed disk it bounds).
//
// In this codebase a circle is almost always the "feasible coverage circle"
// c_i of a subscriber station: the disk of radius d_i (the subscriber's
// distance requirement) centred at the subscriber, inside which a relay must
// sit to provide enough link capacity (paper, Section II-A).
type Circle struct {
	Center Point   `json:"center"`
	R      float64 `json:"r"`
}

// C is shorthand for constructing a Circle.
func C(center Point, r float64) Circle { return Circle{Center: center, R: r} }

// Contains reports whether p lies in the closed disk, with tolerance tol
// added to the radius (pass 0 for exact closed-disk membership).
func (c Circle) Contains(p Point, tol float64) bool {
	return c.Center.Dist(p) <= c.R+tol
}

// OnBoundary reports whether p lies on the circle within tolerance tol.
func (c Circle) OnBoundary(p Point, tol float64) bool {
	return math.Abs(c.Center.Dist(p)-c.R) <= tol
}

// PointAt returns the boundary point at angle theta (radians, measured from
// the positive x axis).
func (c Circle) PointAt(theta float64) Point {
	s, sn := math.Sincos(theta)
	return Point{c.Center.X + c.R*sn, c.Center.Y + c.R*s}
}

// AngleOf returns the angle of p relative to the circle center.
func (c Circle) AngleOf(p Point) float64 {
	d := p.Sub(c.Center)
	return math.Atan2(d.Y, d.X)
}

// ClosestBoundaryPoint returns the point on the circle closest to p. When p
// coincides with the center the point at angle 0 is returned.
func (c Circle) ClosestBoundaryPoint(p Point) Point {
	u, ok := p.Sub(c.Center).Unit()
	if !ok {
		u = Point{1, 0}
	}
	return c.Center.Add(u.Scale(c.R))
}

// Area returns the disk area.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// String renders the circle compactly.
func (c Circle) String() string { return fmt.Sprintf("circle{%v r=%.4g}", c.Center, c.R) }

// Intersect returns the intersection points of the two circles' boundaries.
// It returns 0, 1 (tangent) or 2 points. Coincident circles return no points.
func (c Circle) Intersect(o Circle) []Point {
	d := c.Center.Dist(o.Center)
	if d < Eps {
		return nil // concentric (possibly coincident): no discrete points
	}
	if d > c.R+o.R+Eps {
		return nil // too far apart
	}
	if d < math.Abs(c.R-o.R)-Eps {
		return nil // one strictly inside the other
	}
	// a = distance from c.Center to the chord midpoint along the center line.
	a := (c.R*c.R - o.R*o.R + d*d) / (2 * d)
	h2 := c.R*c.R - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	dir := o.Center.Sub(c.Center).Scale(1 / d)
	mid := c.Center.Add(dir.Scale(a))
	if h < Eps {
		return []Point{mid}
	}
	perp := Point{-dir.Y, dir.X}
	return []Point{
		mid.Add(perp.Scale(h)),
		mid.Sub(perp.Scale(h)),
	}
}

// Overlaps reports whether the closed disks of c and o intersect.
func (c Circle) Overlaps(o Circle) bool {
	return c.Center.Dist(o.Center) <= c.R+o.R+Eps
}

// CommonPoint finds a point contained in every disk of disks, if the common
// intersection is non-empty. It implements the standard candidate argument:
// if the intersection of a family of disks is non-empty, then it contains
// either the center of some disk or a boundary intersection point of two of
// the disks. Among feasible candidates the one with the largest clearance
// (min over disks of R - dist) is returned, which keeps downstream "move the
// relay into the common area" steps numerically robust (paper, Algorithm 5).
//
// tol is added to every disk radius during the feasibility check; pass a
// small positive tolerance (e.g. 1e-7) when candidates lie exactly on
// boundaries.
func CommonPoint(disks []Circle, tol float64) (Point, bool) {
	switch len(disks) {
	case 0:
		return Point{}, false
	case 1:
		return disks[0].Center, true
	}
	candidates := make([]Point, 0, len(disks)*(len(disks)+1))
	for i := range disks {
		candidates = append(candidates, disks[i].Center)
		for j := i + 1; j < len(disks); j++ {
			candidates = append(candidates, disks[i].Intersect(disks[j])...)
		}
	}
	best := Point{}
	bestClear := math.Inf(-1)
	found := false
	for _, p := range candidates {
		clear := math.Inf(1)
		for _, d := range disks {
			margin := d.R + tol - d.Center.Dist(p)
			if margin < clear {
				clear = margin
			}
			if clear < 0 {
				break
			}
		}
		if clear >= 0 && clear > bestClear {
			best, bestClear, found = p, clear, true
		}
	}
	return best, found
}

// CommonArea reports whether the disks have a non-empty common intersection.
func CommonArea(disks []Circle, tol float64) bool {
	_, ok := CommonPoint(disks, tol)
	return ok
}

// IntersectionCandidates returns the classic candidate positions used by the
// IAC scheme (paper, Fig. 2a): all pairwise boundary intersection points of
// the given circles, plus each circle's center (so isolated subscribers are
// still coverable). Near-duplicate points are removed.
func IntersectionCandidates(circles []Circle) []Point {
	pts := make([]Point, 0, len(circles)*(len(circles)+1))
	for i := range circles {
		pts = append(pts, circles[i].Center)
		for j := i + 1; j < len(circles); j++ {
			pts = append(pts, circles[i].Intersect(circles[j])...)
		}
	}
	return DedupPoints(pts, 1e-7)
}
