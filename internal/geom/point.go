// Package geom provides the computational-geometry substrate used by the
// relay-placement algorithms: points, circles, rectangles, segments, grids,
// circle intersections and common-area queries over sets of disks.
//
// All coordinates are float64 in an abstract planar unit (the paper uses
// unit-less field sizes such as 500x500). Comparisons use the package
// tolerance Eps unless a method documents otherwise.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default absolute tolerance used for geometric predicates.
// It is deliberately loose relative to float64 precision because the
// placement algorithms operate on fields of size O(10^3) and distances
// of size O(10); exact boundary membership is never load-bearing.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q viewed as
// vectors, i.e. p.X*q.Y - p.Y*q.X.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// NormSq returns the squared Euclidean length of p viewed as a vector.
func (p Point) NormSq() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point (1-t)*p + t*q. t is not clamped.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Unit returns the unit vector in the direction of p. If p is (near) the
// origin it returns the zero vector and ok=false.
func (p Point) Unit() (u Point, ok bool) {
	n := p.Norm()
	if n < Eps {
		return Point{}, false
	}
	return Point{p.X / n, p.Y / n}, true
}

// Rotate returns p rotated by theta radians about the origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// RotateAround returns p rotated by theta radians about center.
func (p Point) RotateAround(center Point, theta float64) Point {
	return p.Sub(center).Rotate(theta).Add(center)
}

// AlmostEqual reports whether p and q coincide within tol in each coordinate.
func (p Point) AlmostEqual(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// String renders the point as "(x, y)" with compact precision.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Centroid returns the arithmetic mean of pts. It returns the origin and
// ok=false when pts is empty.
func Centroid(pts []Point) (c Point, ok bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return Point{c.X / n, c.Y / n}, true
}

// DedupPoints returns pts with near-duplicates (within tol) removed,
// preserving first-seen order. The input slice is not modified.
func DedupPoints(pts []Point, tol float64) []Point {
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		dup := false
		for _, q := range out {
			if p.AlmostEqual(q, tol) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
