package geom

import (
	"math"
	"testing"
)

// FuzzCircleIntersect checks that circle-circle intersection never reports
// points off either boundary, for arbitrary (finite, sane) inputs.
func FuzzCircleIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 5.0, 6.0, 0.0, 5.0)
	f.Add(1.5, -2.0, 3.0, 1.5, -2.0, 3.0)
	f.Add(0.0, 0.0, 10.0, 2.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, ax, ay, ar, bx, by, br float64) {
		sane := func(v float64) bool { return !math.IsNaN(v) && math.Abs(v) < 1e6 }
		if !sane(ax) || !sane(ay) || !sane(bx) || !sane(by) {
			t.Skip()
		}
		if !sane(ar) || !sane(br) || ar <= 1e-3 || br <= 1e-3 {
			t.Skip()
		}
		a, b := C(Pt(ax, ay), ar), C(Pt(bx, by), br)
		for _, p := range a.Intersect(b) {
			tolA := 1e-6 * math.Max(1, ar)
			tolB := 1e-6 * math.Max(1, br)
			if !a.OnBoundary(p, tolA) || !b.OnBoundary(p, tolB) {
				t.Fatalf("intersection %v off boundary of %v / %v", p, a, b)
			}
		}
	})
}

// FuzzCommonPoint checks that any point CommonPoint returns really lies in
// every disk.
func FuzzCommonPoint(f *testing.F) {
	f.Add(0.0, 0.0, 5.0, 3.0, 0.0, 5.0, 1.5, 1.5, 5.0)
	f.Add(0.0, 0.0, 2.0, 50.0, 0.0, 2.0, -50.0, 0.0, 2.0)
	f.Fuzz(func(t *testing.T, x1, y1, r1, x2, y2, r2, x3, y3, r3 float64) {
		sane := func(v float64) bool { return !math.IsNaN(v) && math.Abs(v) < 1e5 }
		for _, v := range []float64{x1, y1, x2, y2, x3, y3} {
			if !sane(v) {
				t.Skip()
			}
		}
		for _, r := range []float64{r1, r2, r3} {
			if !sane(r) || r <= 1e-3 {
				t.Skip()
			}
		}
		disks := []Circle{C(Pt(x1, y1), r1), C(Pt(x2, y2), r2), C(Pt(x3, y3), r3)}
		p, ok := CommonPoint(disks, 1e-9)
		if !ok {
			return
		}
		for _, d := range disks {
			if !d.Contains(p, 1e-5*math.Max(1, d.R)) {
				t.Fatalf("common point %v outside %v", p, d)
			}
		}
	})
}
