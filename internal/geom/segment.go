package geom

import "fmt"

// Segment is the closed line segment between two points. Segments model
// relay links in the upper tier; steinerization subdivides them with
// intermediate relay stations (paper, Algorithm 7, Step 7).
type Segment struct {
	A Point `json:"a"`
	B Point `json:"b"`
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// PointAt returns the point A + t*(B-A). t is not clamped.
func (s Segment) PointAt(t float64) Point { return s.A.Lerp(s.B, t) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return Midpoint(s.A, s.B) }

// String renders the segment compactly.
func (s Segment) String() string { return fmt.Sprintf("seg[%v - %v]", s.A, s.B) }

// Subdivide returns n interior points splitting the segment into n+1 equal
// sections, in order from A to B. n <= 0 yields nil. This is the
// steinerization primitive: placing w relays on an edge splits it into w+1
// hops of equal length.
func (s Segment) Subdivide(n int) []Point {
	if n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		pts = append(pts, s.PointAt(float64(i)/float64(n+1)))
	}
	return pts
}

// ClosestPoint returns the point on the closed segment nearest to p and the
// parameter t in [0,1] at which it occurs.
func (s Segment) ClosestPoint(p Point) (Point, float64) {
	d := s.B.Sub(s.A)
	den := d.NormSq()
	if den < Eps*Eps {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.PointAt(t), t
}

// DistToPoint returns the distance from p to the closed segment.
func (s Segment) DistToPoint(p Point) float64 {
	q, _ := s.ClosestPoint(p)
	return q.Dist(p)
}
