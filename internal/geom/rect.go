package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle given by its min and max corners.
// The playing fields in the paper (300x300, 500x500, 800x800) are Rects
// centred at the origin.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// SquareField returns the side x side square centred at the origin, matching
// the paper's testing fields (e.g. SquareField(500) is the 500x500 field
// spanning [-250,250]^2).
func SquareField(side float64) Rect {
	h := side / 2
	return Rect{Min: Point{-h, -h}, Max: Point{h, h}}
}

// Width returns the extent of r along x.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle center.
func (r Rect) Center() Point { return Midpoint(r.Min, r.Max) }

// Contains reports whether p lies in the closed rectangle with tolerance tol.
func (r Rect) Contains(p Point, tol float64) bool {
	return p.X >= r.Min.X-tol && p.X <= r.Max.X+tol &&
		p.Y >= r.Min.Y-tol && p.Y <= r.Max.Y+tol
}

// Clamp returns p clamped into the closed rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Expand returns r grown by d on every side (shrunk for negative d; the
// result may be empty, which Contains handles naturally).
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// String renders the rectangle compactly.
func (r Rect) String() string { return fmt.Sprintf("rect[%v..%v]", r.Min, r.Max) }

// BoundingRect returns the smallest rectangle containing all pts.
// It returns the zero Rect and ok=false for an empty slice.
func BoundingRect(pts []Point) (Rect, bool) {
	if len(pts) == 0 {
		return Rect{}, false
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r, true
}

// BoundingRectOfCircles returns the smallest rectangle containing all disks.
func BoundingRectOfCircles(cs []Circle) (Rect, bool) {
	if len(cs) == 0 {
		return Rect{}, false
	}
	r := Rect{
		Min: Point{cs[0].Center.X - cs[0].R, cs[0].Center.Y - cs[0].R},
		Max: Point{cs[0].Center.X + cs[0].R, cs[0].Center.Y + cs[0].R},
	}
	for _, c := range cs[1:] {
		r = r.Union(Rect{
			Min: Point{c.Center.X - c.R, c.Center.Y - c.R},
			Max: Point{c.Center.X + c.R, c.Center.Y + c.R},
		})
	}
	return r, true
}

// GridCenters returns the center points of the square grid cells of the
// given cell size tiling r, row-major from the min corner. This is the GAC
// candidate construction (paper, Fig. 2b): every grid-cell center is a
// candidate relay position. A partial last row/column still contributes
// cells (their centers are pulled inside the rectangle).
//
// cell must be positive; a non-positive cell yields nil.
func GridCenters(r Rect, cell float64) []Point {
	if cell <= 0 || r.Width() < 0 || r.Height() < 0 {
		return nil
	}
	nx := int(math.Ceil(r.Width() / cell))
	ny := int(math.Ceil(r.Height() / cell))
	if nx == 0 {
		nx = 1
	}
	if ny == 0 {
		ny = 1
	}
	pts := make([]Point, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := Point{
				X: r.Min.X + (float64(ix)+0.5)*cell,
				Y: r.Min.Y + (float64(iy)+0.5)*cell,
			}
			pts = append(pts, r.Clamp(p))
		}
	}
	return pts
}
