package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if got := s.Length(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := s.Midpoint(); !got.AlmostEqual(Pt(1.5, 2), 1e-12) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.PointAt(0.2); !got.AlmostEqual(Pt(0.6, 0.8), 1e-12) {
		t.Errorf("PointAt(0.2) = %v", got)
	}
}

func TestSubdivide(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		n    int
		want []Point
	}{
		{0, nil},
		{-3, nil},
		{1, []Point{Pt(5, 0)}},
		{3, []Point{Pt(2.5, 0), Pt(5, 0), Pt(7.5, 0)}},
	}
	for _, tt := range tests {
		got := s.Subdivide(tt.n)
		if len(got) != len(tt.want) {
			t.Fatalf("Subdivide(%d) returned %d points, want %d", tt.n, len(got), len(tt.want))
		}
		for i := range got {
			if !got[i].AlmostEqual(tt.want[i], 1e-12) {
				t.Errorf("Subdivide(%d)[%d] = %v, want %v", tt.n, i, got[i], tt.want[i])
			}
		}
	}
}

// Property: subdividing with n points yields n+1 hops all of equal length,
// and every hop length equals Length/(n+1). This is the invariant
// steinerization relies on: each section must fit the feasible distance.
func TestSubdivideEqualHops(t *testing.T) {
	f := func(ax, ay, bx, by float64, nRaw uint8) bool {
		a, b := clampPt(ax, ay), clampPt(bx, by)
		if a.Dist(b) < 1e-6 {
			return true
		}
		n := int(nRaw%10) + 1
		s := Seg(a, b)
		pts := s.Subdivide(n)
		if len(pts) != n {
			return false
		}
		hop := s.Length() / float64(n+1)
		prev := a
		for _, p := range append(pts, b) {
			if math.Abs(prev.Dist(p)-hop) > 1e-6*math.Max(1, hop) {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		p     Point
		want  Point
		wantT float64
	}{
		{Pt(5, 3), Pt(5, 0), 0.5},
		{Pt(-4, 2), Pt(0, 0), 0},
		{Pt(20, -1), Pt(10, 0), 1},
	}
	for _, tt := range tests {
		got, gotT := s.ClosestPoint(tt.p)
		if !got.AlmostEqual(tt.want, 1e-12) || math.Abs(gotT-tt.wantT) > 1e-12 {
			t.Errorf("ClosestPoint(%v) = %v t=%v, want %v t=%v", tt.p, got, gotT, tt.want, tt.wantT)
		}
	}
}

func TestClosestPointDegenerate(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2))
	got, gotT := s.ClosestPoint(Pt(5, 5))
	if !got.AlmostEqual(Pt(2, 2), 0) || gotT != 0 {
		t.Errorf("degenerate ClosestPoint = %v t=%v", got, gotT)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.DistToPoint(Pt(5, 7)); math.Abs(got-7) > 1e-12 {
		t.Errorf("DistToPoint = %v, want 7", got)
	}
	if got := s.DistToPoint(Pt(13, 4)); math.Abs(got-5) > 1e-12 {
		t.Errorf("DistToPoint past end = %v, want 5", got)
	}
}
