// Package hitting solves geometric minimum hitting set instances: given the
// subscribers' feasible coverage disks and a finite set of candidate relay
// positions, pick the fewest candidates such that every disk contains at
// least one chosen point.
//
// The paper (Alg. 1, Step 4) invokes the minimum hitting set PTAS of
// Mustafa & Ray [5], which is greedy-seeded local search over bounded-size
// swaps. This package implements exactly that scheme: a greedy cover
// followed by (q -> q-1) improvement swaps for q <= MaxSwap. With unbounded
// swap size the local optimum approaches (1+eps)OPT; the default MaxSwap of
// 3 is the standard practical operating point.
package hitting

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"sagrelay/internal/geom"
)

// Instance is a hitting set instance over disks and candidate points.
type Instance struct {
	// Disks are the sets to hit (subscribers' feasible coverage circles).
	Disks []geom.Circle
	// Candidates are the available points (candidate relay positions).
	Candidates []geom.Point
	// Tol is added to each disk radius during membership tests; candidate
	// generators that place points exactly on circle boundaries (IAC) need
	// a small positive tolerance.
	Tol float64
}

// Options tune Solve.
type Options struct {
	// LocalSearch enables the improvement phase (on by default via Solve's
	// documented behaviour when using DefaultOptions).
	LocalSearch bool
	// MaxSwap bounds the swap size q in (q -> q-1) local moves; 0 means 3.
	MaxSwap int
	// MaxRounds bounds full local-search sweeps; 0 means 50.
	MaxRounds int
}

// DefaultOptions enables local search with swap size 3.
func DefaultOptions() Options { return Options{LocalSearch: true, MaxSwap: 3} }

func (o Options) withDefaults() Options {
	if o.MaxSwap <= 0 {
		o.MaxSwap = 3
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 50
	}
	return o
}

// ErrUncoverable reports that some disk contains no candidate at all, so no
// hitting set exists over the given candidates.
var ErrUncoverable = errors.New("hitting: some disk contains no candidate point")

// Solution is a feasible hitting set.
type Solution struct {
	// Chosen are the selected candidate indices, sorted ascending.
	Chosen []int
	// GreedySize is the solution size before local search (== len(Chosen)
	// when local search is off or made no progress).
	GreedySize int
	// Rounds is the number of completed local-search sweeps.
	Rounds int
}

// bitset is a fixed-capacity set of disk indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) orInto(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// countAndNotIn returns |o \ b|: bits of o not present in b.
func (b bitset) countNotIn(o bitset) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(o[i] &^ b[i])
	}
	return n
}

// containsAll reports whether every bit of o is set in b.
func (b bitset) containsAll(o bitset) bool {
	for i := range b {
		if o[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// hitSets returns, per candidate, the bitset of disks it hits.
func (in *Instance) hitSets() []bitset {
	sets := make([]bitset, len(in.Candidates))
	for c, p := range in.Candidates {
		s := newBitset(len(in.Disks))
		for d, disk := range in.Disks {
			if disk.Contains(p, in.Tol) {
				s.set(d)
			}
		}
		sets[c] = s
	}
	return sets
}

// Verify reports whether the chosen candidate indices hit every disk.
func (in *Instance) Verify(chosen []int) bool {
	for _, disk := range in.Disks {
		hit := false
		for _, c := range chosen {
			if c < 0 || c >= len(in.Candidates) {
				return false
			}
			if disk.Contains(in.Candidates[c], in.Tol) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// Solve computes a hitting set. It returns ErrUncoverable when some disk
// contains no candidate. An instance with no disks yields an empty solution.
func (in *Instance) Solve(opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	nD := len(in.Disks)
	if nD == 0 {
		return &Solution{Chosen: []int{}}, nil
	}
	if len(in.Candidates) == 0 {
		return nil, ErrUncoverable
	}
	hit := in.hitSets()

	// Coverage feasibility: every disk needs at least one candidate.
	coverable := newBitset(nD)
	for _, s := range hit {
		coverable.orInto(s)
	}
	if coverable.popcount() != nD {
		return nil, ErrUncoverable
	}

	chosen := greedy(hit, nD)
	sol := &Solution{GreedySize: len(chosen)}
	if opts.LocalSearch {
		var rounds int
		chosen, rounds = localSearch(hit, nD, chosen, opts)
		sol.Rounds = rounds
	}
	sort.Ints(chosen)
	sol.Chosen = chosen
	if !in.Verify(chosen) {
		// Defensive: the algorithms above maintain feasibility by
		// construction; a failure here is an internal bug, not user error.
		return nil, fmt.Errorf("hitting: internal: produced infeasible solution of size %d", len(chosen))
	}
	return sol, nil
}

// SolveMultiCover returns a set of candidates such that every disk
// contains at least demand distinct chosen points (a multi-hitting set).
// demand = 1 reduces to Solve without local search refinement beyond
// redundancy removal. It returns ErrUncoverable when some disk contains
// fewer than demand candidates in total.
//
// Multi-coverage is the dual-relay architecture of IEEE 802.16j MMR
// networks ([8], [9] in the paper's related work): every subscriber keeps
// a backup access relay, so any single relay failure leaves it covered.
func (in *Instance) SolveMultiCover(demand int) (*Solution, error) {
	if demand < 1 {
		return nil, fmt.Errorf("hitting: demand %d must be >= 1", demand)
	}
	nD := len(in.Disks)
	if nD == 0 {
		return &Solution{Chosen: []int{}}, nil
	}
	hit := in.hitSets()
	// Feasibility: every disk needs >= demand candidates.
	for d := range in.Disks {
		avail := 0
		for _, s := range hit {
			if s.has(d) {
				avail++
			}
		}
		if avail < demand {
			return nil, ErrUncoverable
		}
	}
	// Greedy multi-cover: pick the candidate reducing the most residual
	// demand, smallest index on ties.
	need := make([]int, nD)
	for d := range need {
		need[d] = demand
	}
	remaining := nD * demand
	chosen := make([]bool, len(in.Candidates))
	var order []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for c, s := range hit {
			if chosen[c] {
				continue
			}
			gain := 0
			for d := 0; d < nD; d++ {
				if need[d] > 0 && s.has(d) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			return nil, ErrUncoverable // exhausted candidates (shouldn't happen)
		}
		chosen[best] = true
		order = append(order, best)
		for d := 0; d < nD; d++ {
			if need[d] > 0 && hit[best].has(d) {
				need[d]--
				remaining--
			}
		}
	}
	// Redundancy removal in reverse pick order.
	covers := func(sel []int, skip int) bool {
		for d := 0; d < nD; d++ {
			cnt := 0
			for _, c := range sel {
				if c != skip && hit[c].has(d) {
					cnt++
				}
			}
			if cnt < demand {
				return false
			}
		}
		return true
	}
	for i := len(order) - 1; i >= 0; i-- {
		if covers(order, order[i]) {
			order = append(order[:i], order[i+1:]...)
		}
	}
	sort.Ints(order)
	sol := &Solution{Chosen: order, GreedySize: len(order)}
	if !in.verifyMulti(order, demand) {
		return nil, fmt.Errorf("hitting: internal: multi-cover produced infeasible solution")
	}
	return sol, nil
}

// verifyMulti reports whether every disk contains >= demand chosen points.
func (in *Instance) verifyMulti(chosen []int, demand int) bool {
	for _, disk := range in.Disks {
		cnt := 0
		for _, c := range chosen {
			if c < 0 || c >= len(in.Candidates) {
				return false
			}
			if disk.Contains(in.Candidates[c], in.Tol) {
				cnt++
			}
		}
		if cnt < demand {
			return false
		}
	}
	return true
}

// VerifyMultiCover reports whether chosen satisfies the demand-fold
// coverage of every disk.
func (in *Instance) VerifyMultiCover(chosen []int, demand int) bool {
	return in.verifyMulti(chosen, demand)
}

// greedy repeatedly picks the candidate hitting the most not-yet-hit disks
// (smallest index on ties, for determinism).
func greedy(hit []bitset, nD int) []int {
	covered := newBitset(nD)
	var chosen []int
	remaining := nD
	for remaining > 0 {
		best, bestGain := -1, 0
		for c, s := range hit {
			if gain := covered.countNotIn(s); gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			// Callers check coverability first; this is unreachable there.
			break
		}
		chosen = append(chosen, best)
		covered.orInto(hit[best])
		remaining = nD - covered.popcount()
	}
	return chosen
}

// localSearch improves the solution with (q -> q-1) swaps for q = 1..MaxSwap:
// q=1 removes redundant points; q=2 replaces two points with one; q=3
// replaces three with two. Sweeps repeat until a full round makes no
// progress or MaxRounds is hit.
func localSearch(hit []bitset, nD int, chosen []int, opts Options) ([]int, int) {
	rounds := 0
	for rounds < opts.MaxRounds {
		rounds++
		improved := false
		if removeRedundant(hit, nD, &chosen) {
			improved = true
		}
		if opts.MaxSwap >= 2 && swap21(hit, nD, &chosen) {
			improved = true
		}
		if opts.MaxSwap >= 3 && swap32(hit, nD, &chosen) {
			improved = true
		}
		if !improved {
			break
		}
	}
	return chosen, rounds
}

// coverageWithout returns the union of hit sets of chosen, skipping indices
// in the skip set.
func coverageWithout(hit []bitset, nD int, chosen []int, skip map[int]bool) bitset {
	cov := newBitset(nD)
	for _, c := range chosen {
		if skip[c] {
			continue
		}
		cov.orInto(hit[c])
	}
	return cov
}

// removeRedundant deletes chosen points whose disks are all covered by the
// rest (1 -> 0 swaps). Returns true when anything was removed.
func removeRedundant(hit []bitset, nD int, chosen *[]int) bool {
	removed := false
	for i := 0; i < len(*chosen); {
		c := (*chosen)[i]
		rest := coverageWithout(hit, nD, *chosen, map[int]bool{c: true})
		if rest.containsAll(hit[c]) && rest.popcount() == nD {
			*chosen = append((*chosen)[:i], (*chosen)[i+1:]...)
			removed = true
			continue
		}
		i++
	}
	return removed
}

// swap21 tries to replace a pair of chosen points with a single candidate
// (2 -> 1 swaps). Returns true on the first successful swap per sweep.
func swap21(hit []bitset, nD int, chosen *[]int) bool {
	ch := *chosen
	for i := 0; i < len(ch); i++ {
		for j := i + 1; j < len(ch); j++ {
			rest := coverageWithout(hit, nD, ch, map[int]bool{ch[i]: true, ch[j]: true})
			// need = disks covered only by the removed pair
			for c, s := range hit {
				if c == ch[i] || c == ch[j] {
					continue
				}
				merged := rest.clone()
				merged.orInto(s)
				if merged.popcount() == nD {
					out := make([]int, 0, len(ch)-1)
					for k, v := range ch {
						if k != i && k != j {
							out = append(out, v)
						}
					}
					out = append(out, c)
					*chosen = out
					return true
				}
			}
		}
	}
	return false
}

// swap32 tries to replace a triple of chosen points with two candidates
// (3 -> 2 swaps). To stay polynomial it only pairs candidates that each
// cover at least one disk the triple exclusively covered.
func swap32(hit []bitset, nD int, chosen *[]int) bool {
	ch := *chosen
	if len(ch) < 3 {
		return false
	}
	for i := 0; i < len(ch); i++ {
		for j := i + 1; j < len(ch); j++ {
			for k := j + 1; k < len(ch); k++ {
				skip := map[int]bool{ch[i]: true, ch[j]: true, ch[k]: true}
				rest := coverageWithout(hit, nD, ch, skip)
				// Candidates that help at all:
				var useful []int
				for c, s := range hit {
					if skip[c] {
						continue
					}
					if rest.countNotIn(s) > 0 {
						useful = append(useful, c)
					}
				}
				for a := 0; a < len(useful); a++ {
					mergedA := rest.clone()
					mergedA.orInto(hit[useful[a]])
					if mergedA.popcount() == nD {
						// Even a single candidate suffices: 3 -> 1.
						*chosen = rebuild(ch, skip, useful[a])
						return true
					}
					for b := a + 1; b < len(useful); b++ {
						merged := mergedA.clone()
						merged.orInto(hit[useful[b]])
						if merged.popcount() == nD {
							*chosen = rebuild(ch, skip, useful[a], useful[b])
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// rebuild returns chosen minus the skipped indices plus the replacements.
func rebuild(chosen []int, skip map[int]bool, add ...int) []int {
	out := make([]int, 0, len(chosen))
	for _, v := range chosen {
		if !skip[v] {
			out = append(out, v)
		}
	}
	return append(out, add...)
}
