package hitting

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sagrelay/internal/geom"
)

func TestMultiCoverDemandOne(t *testing.T) {
	in := &Instance{
		Disks:      []geom.Circle{geom.C(geom.Pt(0, 0), 5), geom.C(geom.Pt(20, 0), 5)},
		Candidates: []geom.Point{geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(100, 100)},
	}
	sol, err := in.SolveMultiCover(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 2 {
		t.Errorf("demand 1 chose %v", sol.Chosen)
	}
	if !in.VerifyMultiCover(sol.Chosen, 1) {
		t.Error("solution fails verification")
	}
}

func TestMultiCoverDemandTwo(t *testing.T) {
	disks := []geom.Circle{geom.C(geom.Pt(0, 0), 10)}
	in := &Instance{
		Disks:      disks,
		Candidates: []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(50, 0)},
	}
	sol, err := in.SolveMultiCover(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 2 {
		t.Fatalf("chose %v, want both in-disk candidates", sol.Chosen)
	}
	if !in.VerifyMultiCover(sol.Chosen, 2) {
		t.Error("solution fails 2-fold verification")
	}
	if in.VerifyMultiCover(sol.Chosen[:1], 2) {
		t.Error("1 point passes 2-fold verification")
	}
}

func TestMultiCoverUncoverable(t *testing.T) {
	in := &Instance{
		Disks:      []geom.Circle{geom.C(geom.Pt(0, 0), 5)},
		Candidates: []geom.Point{geom.Pt(0, 0)},
	}
	if _, err := in.SolveMultiCover(2); !errors.Is(err, ErrUncoverable) {
		t.Errorf("want ErrUncoverable, got %v", err)
	}
}

func TestMultiCoverInvalidDemand(t *testing.T) {
	in := &Instance{}
	if _, err := in.SolveMultiCover(0); err == nil {
		t.Error("demand 0 accepted")
	}
}

func TestMultiCoverEmptyInstance(t *testing.T) {
	in := &Instance{}
	sol, err := in.SolveMultiCover(3)
	if err != nil || len(sol.Chosen) != 0 {
		t.Errorf("empty instance: %v, %v", sol, err)
	}
}

func TestMultiCoverRedundancyRemoval(t *testing.T) {
	// Three candidates all inside one disk; demand 2 should keep exactly 2.
	in := &Instance{
		Disks: []geom.Circle{geom.C(geom.Pt(0, 0), 10)},
		Candidates: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(-1, -1),
		},
	}
	sol, err := in.SolveMultiCover(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 2 {
		t.Errorf("kept %d candidates, want 2", len(sol.Chosen))
	}
}

// Property: multi-cover solutions are feasible and never smaller than the
// demand for a single disk; demand-2 solutions are supersets in size of
// demand-1 solutions.
func TestMultiCoverProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nD := 1 + rng.Intn(8)
		disks := make([]geom.Circle, nD)
		var cands []geom.Point
		for i := range disks {
			disks[i] = geom.C(geom.Pt(rng.Float64()*100, rng.Float64()*100), 20+rng.Float64()*15)
			// Two candidates per disk guarantee 2-fold coverability.
			cands = append(cands, disks[i].Center, disks[i].Center.Add(geom.Pt(1, 1)))
		}
		in := &Instance{Disks: disks, Candidates: cands}
		one, err := in.SolveMultiCover(1)
		if err != nil {
			return false
		}
		two, err := in.SolveMultiCover(2)
		if err != nil {
			return false
		}
		if !in.VerifyMultiCover(one.Chosen, 1) || !in.VerifyMultiCover(two.Chosen, 2) {
			return false
		}
		return len(two.Chosen) >= len(one.Chosen) && len(two.Chosen) >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
