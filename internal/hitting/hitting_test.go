package hitting

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sagrelay/internal/geom"
)

func TestEmptyInstance(t *testing.T) {
	in := &Instance{}
	sol, err := in.Solve(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 0 {
		t.Errorf("empty instance chose %v", sol.Chosen)
	}
}

func TestUncoverable(t *testing.T) {
	in := &Instance{
		Disks:      []geom.Circle{geom.C(geom.Pt(0, 0), 1)},
		Candidates: []geom.Point{geom.Pt(100, 100)},
	}
	if _, err := in.Solve(DefaultOptions()); !errors.Is(err, ErrUncoverable) {
		t.Errorf("want ErrUncoverable, got %v", err)
	}
	in.Candidates = nil
	if _, err := in.Solve(DefaultOptions()); !errors.Is(err, ErrUncoverable) {
		t.Errorf("no candidates: want ErrUncoverable, got %v", err)
	}
}

func TestSingleCandidateCoversAll(t *testing.T) {
	in := &Instance{
		Disks: []geom.Circle{
			geom.C(geom.Pt(0, 0), 10),
			geom.C(geom.Pt(5, 0), 10),
			geom.C(geom.Pt(0, 5), 10),
		},
		Candidates: []geom.Point{geom.Pt(50, 50), geom.Pt(1, 1), geom.Pt(-20, 0)},
	}
	sol, err := in.Solve(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 1 || sol.Chosen[0] != 1 {
		t.Errorf("Chosen = %v, want [1]", sol.Chosen)
	}
}

func TestDisjointDisksNeedOneEach(t *testing.T) {
	in := &Instance{
		Disks: []geom.Circle{
			geom.C(geom.Pt(0, 0), 1),
			geom.C(geom.Pt(100, 0), 1),
			geom.C(geom.Pt(0, 100), 1),
		},
		Candidates: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(0, 100)},
	}
	sol, err := in.Solve(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 3 {
		t.Errorf("Chosen = %v, want all three", sol.Chosen)
	}
}

func TestBoundaryToleranceMatters(t *testing.T) {
	// Candidate exactly on the boundary: without tolerance float error can
	// reject it; with Tol it must be accepted.
	disk := geom.C(geom.Pt(0, 0), 5)
	onBoundary := disk.PointAt(0.7) // exact boundary point
	in := &Instance{
		Disks:      []geom.Circle{disk},
		Candidates: []geom.Point{onBoundary},
		Tol:        1e-7,
	}
	sol, err := in.Solve(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Chosen) != 1 {
		t.Errorf("boundary candidate rejected")
	}
}

// localSearchBeatsGreedyInstance is a construction where greedy picks a
// middle point then needs two more, while the optimum is 2: disks A,B hit
// jointly by p0; disks C,D hit jointly by p1; and a decoy p2 hitting B,C
// (greedy ties pick it first only if it covers the most; here A,B,C gives it
// the edge).
func TestLocalSearchImproves(t *testing.T) {
	disks := []geom.Circle{
		geom.C(geom.Pt(0, 0), 2),  // A
		geom.C(geom.Pt(3, 0), 2),  // B
		geom.C(geom.Pt(10, 0), 2), // C
		geom.C(geom.Pt(13, 0), 2), // D
	}
	cands := []geom.Point{
		geom.Pt(1.5, 0),  // hits A,B
		geom.Pt(11.5, 0), // hits C,D
		geom.Pt(2.9, 0),  // hits A(no: dist 2.9>2)... hits B only
		geom.Pt(9.9, 0),  // hits C only
	}
	in := &Instance{Disks: disks, Candidates: cands}
	greedyOnly, err := in.Solve(Options{LocalSearch: false})
	if err != nil {
		t.Fatal(err)
	}
	withLS, err := in.Solve(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(withLS.Chosen) > len(greedyOnly.Chosen) {
		t.Errorf("local search made things worse: %d > %d", len(withLS.Chosen), len(greedyOnly.Chosen))
	}
	if len(withLS.Chosen) != 2 {
		t.Errorf("optimal size 2 not found: %v", withLS.Chosen)
	}
}

func TestSwap21Improvement(t *testing.T) {
	// Force greedy into 3 picks where 2 suffice, then verify 2->1 swap.
	// Universe: disks 0..4. greedy bait candidate hits {0,1,2}; then it needs
	// {3} and {4} separately. Optimal: {0,1,3} + {2,4}? Construct via bitsets
	// by geometry: line of disks radius 1.1 at x=0,2,4,6,8.
	disks := []geom.Circle{
		geom.C(geom.Pt(0, 0), 1.1),
		geom.C(geom.Pt(2, 0), 1.1),
		geom.C(geom.Pt(4, 0), 1.1),
		geom.C(geom.Pt(6, 0), 1.1),
		geom.C(geom.Pt(8, 0), 1.1),
	}
	cands := []geom.Point{
		geom.Pt(1, 0), // hits 0,1
		geom.Pt(3, 0), // hits 1,2
		geom.Pt(5, 0), // hits 2,3
		geom.Pt(7, 0), // hits 3,4
	}
	in := &Instance{Disks: disks, Candidates: cands}
	sol, err := in.Solve(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Optimum here is 3 ({1,0},{3,2},{4}) -> e.g. cands 0,2,3.
	if len(sol.Chosen) != 3 {
		t.Errorf("Chosen = %v, want size 3", sol.Chosen)
	}
	if !in.Verify(sol.Chosen) {
		t.Error("solution infeasible")
	}
}

func TestVerify(t *testing.T) {
	in := &Instance{
		Disks:      []geom.Circle{geom.C(geom.Pt(0, 0), 5)},
		Candidates: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)},
	}
	if !in.Verify([]int{0}) {
		t.Error("covering choice rejected")
	}
	if in.Verify([]int{1}) {
		t.Error("non-covering choice accepted")
	}
	if in.Verify([]int{}) {
		t.Error("empty choice accepted for non-empty disks")
	}
	if in.Verify([]int{99}) {
		t.Error("out-of-range choice accepted")
	}
}

// Property: on random instances where every disk center is a candidate, the
// solver returns a feasible solution no larger than greedy, and never larger
// than the number of disks.
func TestSolveProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nD := 1 + rng.Intn(25)
		disks := make([]geom.Circle, nD)
		cands := make([]geom.Point, 0, nD*2)
		for i := range disks {
			disks[i] = geom.C(geom.Pt(rng.Float64()*200, rng.Float64()*200), 15+rng.Float64()*20)
			cands = append(cands, disks[i].Center)
		}
		for i := 0; i < nD; i++ {
			cands = append(cands, geom.Pt(rng.Float64()*200, rng.Float64()*200))
		}
		in := &Instance{Disks: disks, Candidates: cands}
		sol, err := in.Solve(DefaultOptions())
		if err != nil {
			return false
		}
		if !in.Verify(sol.Chosen) {
			return false
		}
		return len(sol.Chosen) <= sol.GreedySize && len(sol.Chosen) <= nD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: local search result is no larger than optimal by more than the
// brute-force optimum on tiny instances (exact check: size <= OPT would be
// ideal; we assert size <= OPT is observed in at least the brute-force
// comparable cases where local search is within +1 of optimum).
func TestNearOptimalOnTinyInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nD := 1 + rng.Intn(6)
		nC := 1 + rng.Intn(8)
		disks := make([]geom.Circle, nD)
		for i := range disks {
			disks[i] = geom.C(geom.Pt(rng.Float64()*50, rng.Float64()*50), 10+rng.Float64()*20)
		}
		cands := make([]geom.Point, nC)
		for i := range cands {
			cands[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		in := &Instance{Disks: disks, Candidates: cands}
		sol, err := in.Solve(DefaultOptions())
		if errors.Is(err, ErrUncoverable) {
			return true
		}
		if err != nil {
			return false
		}
		// Brute force optimum.
		best := nC + 1
		for mask := 0; mask < 1<<nC; mask++ {
			var chosen []int
			for c := 0; c < nC; c++ {
				if mask&(1<<c) != 0 {
					chosen = append(chosen, c)
				}
			}
			if len(chosen) < best && in.Verify(chosen) {
				best = len(chosen)
			}
		}
		// Local search with swaps up to 3 guarantees <= 1 + OPT on these
		// tiny instances in practice; assert feasibility and a sane bound.
		return len(sol.Chosen) >= best && len(sol.Chosen) <= best+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	disks := []geom.Circle{geom.C(geom.Pt(0, 0), 5)}
	in := &Instance{Disks: disks, Candidates: []geom.Point{geom.Pt(0, 0)}}
	sol, err := in.Solve(Options{LocalSearch: true, MaxSwap: 3, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rounds > 1 {
		t.Errorf("Rounds = %d, want <= 1", sol.Rounds)
	}
}
