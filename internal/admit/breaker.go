package admit

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: normal operation, every outcome is windowed.
	BreakerClosed BreakerState = iota
	// BreakerOpen: heuristic-first mode; after the cooldown the next job
	// becomes the half-open probe.
	BreakerOpen
	// BreakerHalfOpen: one probe job is running (or owed) the exact
	// pipeline; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// Breaker is a count-based circuit breaker over the degradation ladder.
// Outcomes of exact-pipeline jobs fill a sliding window; when the bad
// fraction reaches the threshold (with at least minSamples outcomes) the
// breaker opens and the server runs heuristic-first. After cooldown, a
// single probe job runs the exact pipeline: a clean probe closes the
// breaker and resets the window, a bad one re-opens it for another
// cooldown. All transitions are driven by counts and recorded timestamps —
// no timers — so a fault-seeded test can walk the full lifecycle
// deterministically.
type Breaker struct {
	threshold  float64
	window     int
	minSamples int
	cooldown   time.Duration

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring buffer of bad flags
	next     int    // ring write position
	count    int    // filled entries, <= window
	bad      int    // bad entries currently in the ring
	openedAt time.Time
	probing  bool // a probe grant is outstanding
	// onChange, when set, observes every state transition. Called with the
	// breaker lock held: it must be fast and must not call back into the
	// Breaker (logging and counters only).
	onChange func(from, to BreakerState)

	trips atomic.Int64
}

// SetOnChange installs a state-transition observer (see onChange). Install
// it before the breaker sees traffic; it is not safe to swap concurrently
// with Allow/Record.
func (b *Breaker) SetOnChange(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// setStateLocked moves the breaker to the given state, notifying onChange
// on a real transition.
func (b *Breaker) setStateLocked(to BreakerState) {
	from := b.state
	b.state = to
	if from != to && b.onChange != nil {
		b.onChange(from, to)
	}
}

// String renders the breaker state for logs and documents.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// NewBreaker builds a closed breaker.
func NewBreaker(threshold float64, window, minSamples int, cooldown time.Duration) *Breaker {
	if window < 1 {
		window = 1
	}
	if minSamples < 1 {
		minSamples = 1
	}
	return &Breaker{
		threshold:  threshold,
		window:     window,
		minSamples: minSamples,
		cooldown:   cooldown,
		outcomes:   make([]bool, window),
	}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened (re-opens after a
// failed probe included).
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// Allow issues the execution mode for a job about to run: closed means
// exact pipeline; open means heuristic-first — unless the cooldown has
// elapsed and no probe is outstanding, in which case this job becomes the
// half-open probe (probe=true, exact pipeline).
func (b *Breaker) Allow(now time.Time) (heuristicFirst, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, false
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.setStateLocked(BreakerHalfOpen)
			b.probing = true
			return false, true
		}
		return true, false
	default: // BreakerHalfOpen
		if !b.probing {
			// The previous probe was aborted before it ran; issue another.
			b.probing = true
			return false, true
		}
		return true, false
	}
}

// AbortProbe returns an unused probe claim (the probe job died before its
// solve ran); the breaker stays half-open and the next Allow issues a new
// probe.
func (b *Breaker) AbortProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Record feeds one finished exact-pipeline job into the breaker. A probe
// outcome settles the half-open state: clean closes the breaker (window
// reset), bad re-opens it. Non-probe outcomes only matter while closed,
// where they fill the window and may trip it.
func (b *Breaker) Record(bad, probe bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if bad {
			b.tripLocked(now)
			return
		}
		b.setStateLocked(BreakerClosed)
		b.resetWindowLocked()
		return
	}
	if b.state != BreakerClosed {
		return
	}
	if b.count == b.window {
		if b.outcomes[b.next] {
			b.bad--
		}
	} else {
		b.count++
	}
	b.outcomes[b.next] = bad
	if bad {
		b.bad++
	}
	b.next = (b.next + 1) % b.window
	if b.count >= b.minSamples && float64(b.bad) >= b.threshold*float64(b.count) {
		b.tripLocked(now)
	}
}

// ForceTrip opens the breaker unconditionally (the admit.breaker fault
// site's deterministic chaos hook).
func (b *Breaker) ForceTrip(now time.Time) {
	b.mu.Lock()
	b.tripLocked(now)
	b.mu.Unlock()
}

func (b *Breaker) tripLocked(now time.Time) {
	b.setStateLocked(BreakerOpen)
	b.openedAt = now
	b.probing = false
	b.trips.Add(1)
	b.resetWindowLocked()
}

func (b *Breaker) resetWindowLocked() {
	b.next, b.count, b.bad = 0, 0, 0
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
}
