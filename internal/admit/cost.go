package admit

import "sync"

// costAlpha is the EWMA weight of the newest observation: high enough to
// track load shifts within a few jobs, low enough that one outlier cannot
// swing the estimate by itself.
const costAlpha = 0.3

// costMinSamples is how many completed solves the model wants before it is
// willing to shed anything: a cold server admits everything, because a
// wrong early estimate that rejects work is strictly worse than a queue
// that briefly runs long.
const costMinSamples = 3

// sizeClassBase is the subscriber count covered by size class 0; each
// further class doubles it.
const sizeClassBase = 8

// SizeClass buckets a scenario by subscriber count into log2-spaced
// classes: class 0 holds scenarios up to sizeClassBase subscribers, class 1
// up to twice that, and so on. Solve cost grows superlinearly in scenario
// size (more zones, bigger ILPs), so latency within one class is far more
// homogeneous than across the whole workload.
func SizeClass(subscribers int) int {
	class := 0
	for n := subscribers; n > sizeClassBase; n >>= 1 {
		class++
	}
	return class
}

type ewma struct {
	mean float64
	n    int64
}

func (e *ewma) observe(v float64) {
	e.n++
	if e.n == 1 {
		e.mean = v
		return
	}
	e.mean += costAlpha * (v - e.mean)
}

// CostModel estimates solve seconds from recent completions: one EWMA per
// size class, plus an overall EWMA that both gates shedding (via
// costMinSamples) and stands in for classes never seen.
type CostModel struct {
	mu      sync.Mutex
	byClass map[int]*ewma
	overall ewma
}

// NewCostModel returns an empty (never-shedding) model.
func NewCostModel() *CostModel {
	return &CostModel{byClass: make(map[int]*ewma)}
}

// Observe feeds one completed solve's wall-clock seconds into the model.
func (m *CostModel) Observe(class int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.byClass[class]
	if !ok {
		e = &ewma{}
		m.byClass[class] = e
	}
	e.observe(seconds)
	m.overall.observe(seconds)
}

// Estimate returns the estimated solve seconds for class (falling back to
// the overall mean for unseen classes) and the overall mean (the per-slot
// drain rate for queue-wait estimates). ok is false until costMinSamples
// observations exist — callers must then admit unconditionally.
func (m *CostModel) Estimate(class int) (est, mean float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.overall.n < costMinSamples {
		return 0, 0, false
	}
	mean = m.overall.mean
	est = mean
	if e, found := m.byClass[class]; found && e.n > 0 {
		est = e.mean
	}
	return est, mean, true
}
