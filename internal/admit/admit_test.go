package admit

import (
	"context"
	"errors"
	"testing"
	"time"

	"sagrelay/internal/fault"
)

func TestSizeClassBuckets(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {8, 0}, {9, 1}, {16, 1}, {18, 2}, {32, 2}, {64, 3}, {1000, 7},
	}
	for _, c := range cases {
		if got := SizeClass(c.n); got != c.want {
			t.Errorf("SizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCostModelColdThenWarm(t *testing.T) {
	m := NewCostModel()
	if _, _, ok := m.Estimate(0); ok {
		t.Fatal("cold model claims an estimate")
	}
	m.Observe(0, 1.0)
	m.Observe(0, 1.0)
	if _, _, ok := m.Estimate(0); ok {
		t.Fatalf("model with %d obs sheds before costMinSamples=%d", 2, costMinSamples)
	}
	m.Observe(0, 1.0)
	est, mean, ok := m.Estimate(0)
	if !ok || est != 1.0 || mean != 1.0 {
		t.Fatalf("Estimate = (%v, %v, %v), want (1, 1, true)", est, mean, ok)
	}
	// An unseen class falls back to the overall mean.
	est2, _, ok := m.Estimate(5)
	if !ok || est2 != mean {
		t.Fatalf("unseen class estimate %v, want overall mean %v", est2, mean)
	}
	// A slow class dominates its own estimate but only nudges the overall.
	for i := 0; i < 5; i++ {
		m.Observe(3, 10.0)
	}
	est3, mean3, _ := m.Estimate(3)
	if est3 < 5.0 {
		t.Fatalf("class-3 estimate %v should approach 10", est3)
	}
	if mean3 >= est3 {
		t.Fatalf("overall mean %v should lag the slow class %v", mean3, est3)
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	l := NewRateLimiter(1.0, 2, 16)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if _, ok := l.Allow("a", t0); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	retry, ok := l.Allow("a", t0)
	if ok {
		t.Fatal("third immediate request admitted past burst=2")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	// A different client has its own bucket.
	if _, ok := l.Allow("b", t0); !ok {
		t.Fatal("client b denied by client a's bucket")
	}
	// After a second, one token has accrued.
	if _, ok := l.Allow("a", t0.Add(time.Second)); !ok {
		t.Fatal("refilled token denied")
	}
	if _, ok := l.Allow("a", t0.Add(time.Second)); ok {
		t.Fatal("second token admitted after only one refill")
	}
	// rate <= 0 disables limiting.
	off := NewRateLimiter(0, 1, 16)
	for i := 0; i < 100; i++ {
		if _, ok := off.Allow("a", t0); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
}

func TestAIMDAcquireReleaseAndClamps(t *testing.T) {
	a := NewAIMD(1, 4)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := a.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Fifth acquire blocks until a release.
	acquired := make(chan error, 1)
	go func() { acquired <- a.Acquire(ctx) }()
	select {
	case <-acquired:
		t.Fatal("acquire beyond the limit did not block")
	case <-time.After(50 * time.Millisecond):
	}
	a.Release(true)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	// Bad completions halve the limit: 4 -> 2 -> 1, clamped at min.
	a.Release(false)
	a.Release(false)
	if got := a.Limit(); got != 1 {
		t.Fatalf("limit after two bad releases = %d, want 1", got)
	}
	a.Release(false)
	if got := a.Limit(); got != 1 {
		t.Fatalf("limit clamps at min: got %d", got)
	}
	// Good completions climb back one at a time, capped at max.
	for i := 0; i < 10; i++ {
		a.Release(true)
	}
	if got := a.Limit(); got != 4 {
		t.Fatalf("limit after recovery = %d, want max 4", got)
	}
}

func TestAIMDAcquireHonorsContext(t *testing.T) {
	a := NewAIMD(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- a.Acquire(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	if got := a.Inflight(); got != 1 {
		t.Fatalf("inflight after cancelled acquire = %d, want 1 (no leaked slot)", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	t0 := time.Unix(2000, 0)
	b := NewBreaker(0.5, 4, 3, time.Second)
	if hf, probe := b.Allow(t0); hf || probe {
		t.Fatal("closed breaker must issue the exact pipeline")
	}
	b.Record(false, false, t0)
	b.Record(true, false, t0)
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below minSamples")
	}
	b.Record(true, false, t0)
	if b.State() != BreakerOpen {
		t.Fatalf("2/3 bad >= 0.5 should open the breaker; state %v", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// While open and inside the cooldown: heuristic-first, no probe.
	if hf, probe := b.Allow(t0.Add(100 * time.Millisecond)); !hf || probe {
		t.Fatal("open breaker inside cooldown must issue heuristic-first")
	}
	// After cooldown: exactly one probe, everyone else heuristic-first.
	hf, probe := b.Allow(t0.Add(2 * time.Second))
	if hf || !probe {
		t.Fatal("first job past cooldown must be the probe")
	}
	if hf2, probe2 := b.Allow(t0.Add(2 * time.Second)); !hf2 || probe2 {
		t.Fatal("second job during half-open must be heuristic-first")
	}
	// A bad probe re-opens (and re-counts the trip).
	b.Record(true, true, t0.Add(2*time.Second))
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("bad probe: state %v trips %d, want open/2", b.State(), b.Trips())
	}
	// An aborted probe hands the claim back.
	_, probe = b.Allow(t0.Add(4 * time.Second))
	if !probe {
		t.Fatal("expected a new probe after the second cooldown")
	}
	b.AbortProbe()
	_, probe = b.Allow(t0.Add(4 * time.Second))
	if !probe {
		t.Fatal("aborted probe claim was not reissued")
	}
	// A clean probe closes the breaker and resets the window.
	b.Record(false, true, t0.Add(4*time.Second))
	if b.State() != BreakerClosed {
		t.Fatalf("clean probe left state %v", b.State())
	}
	// The reset window means one new bad outcome cannot instantly re-trip.
	b.Record(true, false, t0.Add(5*time.Second))
	if b.State() != BreakerClosed {
		t.Fatal("window was not reset by the clean probe")
	}
}

func TestBreakerSlidingWindowEvicts(t *testing.T) {
	b := NewBreaker(0.75, 4, 4, time.Second)
	t0 := time.Unix(3000, 0)
	// Two bad then two good: 0.5 < 0.75, stays closed.
	b.Record(true, false, t0)
	b.Record(true, false, t0)
	b.Record(false, false, t0)
	b.Record(false, false, t0)
	if b.State() != BreakerClosed {
		t.Fatalf("2/4 bad tripped a 0.75 breaker (state %v)", b.State())
	}
	// Four goods age the two bads out of the window entirely...
	for i := 0; i < 4; i++ {
		b.Record(false, false, t0)
	}
	// ...so two fresh bads are again only 2/4, not 4/8.
	b.Record(true, false, t0)
	b.Record(true, false, t0)
	if b.State() != BreakerClosed {
		t.Fatalf("aged-out failures still counted (state %v)", b.State())
	}
	// One more bad makes 3/4 >= 0.75 within the current window: trip.
	b.Record(true, false, t0)
	if b.State() != BreakerOpen {
		t.Fatalf("3/4 bad did not trip (state %v)", b.State())
	}
}

func TestControllerShedsWhenDeadlineTooTight(t *testing.T) {
	c := New(Options{MaxInflight: 2, BreakerThreshold: 2})
	// Warm the model: three one-second solves.
	for i := 0; i < 3; i++ {
		g, err := c.Begin(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		c.Finish(g, Outcome{SizeClass: 0, Seconds: 1.0})
	}
	// Plenty of budget: admitted, with estimates attached.
	d, err := c.Admit(0, 0, time.Minute)
	if err != nil {
		t.Fatalf("generous deadline shed: %v", err)
	}
	if d.EstSolve <= 0 {
		t.Fatal("warm model returned no estimate")
	}
	// 10ms budget against a ~1s estimate: shed with a typed error.
	_, err = c.Admit(0, 4, 10*time.Millisecond)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("tight deadline returned %v, want *ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatal("ShedError carries no RetryAfter")
	}
	if shed.EstWait <= 0 {
		t.Fatal("queued jobs contribute no estimated wait")
	}
}

func TestControllerColdModelAdmitsEverything(t *testing.T) {
	c := New(Options{MaxInflight: 1})
	if _, err := c.Admit(3, 1000, time.Nanosecond); err != nil {
		t.Fatalf("cold model shed a job: %v", err)
	}
}

func TestControllerRateLimitTyped(t *testing.T) {
	c := New(Options{Rate: 1, Burst: 1, MaxInflight: 1})
	if err := c.AllowClient("k"); err != nil {
		t.Fatal(err)
	}
	err := c.AllowClient("k")
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("second immediate request returned %v, want *RateLimitError", err)
	}
	if rl.RetryAfter <= 0 {
		t.Fatal("RateLimitError carries no RetryAfter")
	}
	if err := c.AllowClient(""); err != nil {
		t.Fatal("internal (empty) client must never be limited")
	}
}

func TestForcedShedAndTripFaultSites(t *testing.T) {
	if err := fault.EnableSpec("admit.shed=error:n=1", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
	c := New(Options{MaxInflight: 1})
	_, err := c.Admit(0, 0, time.Minute)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("armed admit.shed returned %v, want *ShedError", err)
	}
	if _, err := c.Admit(0, 0, time.Minute); err != nil {
		t.Fatalf("n=1 rule still firing: %v", err)
	}

	// Panic-kind rules are recovered into the forced decision.
	if err := fault.EnableSpec("admit.shed=panic:n=1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(0, 0, time.Minute); !errors.As(err, &shed) {
		t.Fatalf("panic-kind shed returned %v, want *ShedError", err)
	}

	// admit.breaker forces a deterministic trip at Finish.
	if err := fault.EnableSpec("admit.breaker=error:n=1", 1); err != nil {
		t.Fatal(err)
	}
	g, err := c.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Finish(g, Outcome{SizeClass: 0, Seconds: 0.01})
	if c.BreakerState() != int64(BreakerOpen) {
		t.Fatalf("armed admit.breaker left state %d, want open", c.BreakerState())
	}
	if c.BreakerTrips() != 1 {
		t.Fatalf("trips = %d, want 1", c.BreakerTrips())
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	c := New(Options{MaxInflight: 2})
	g, err := c.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Finish(g, Outcome{Seconds: 0.1})
	c.Finish(g, Outcome{Failed: true}) // backstop call: must not double-release
	if got := c.aimd.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after double Finish, want 0", got)
	}
	if got := c.InflightLimit(); got != 2 {
		t.Fatalf("limit = %d, want untouched 2 (second Finish must not halve)", got)
	}
	c.Finish(nil, Outcome{}) // nil grant no-op
}
