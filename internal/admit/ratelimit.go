package admit

import (
	"container/list"
	"sync"
	"time"
)

// RateLimiter is a per-client token-bucket limiter: each client key owns a
// bucket of burst tokens refilled at rate tokens/second, and one submission
// costs one token. The bucket table is LRU-bounded so a scan of unique
// client keys cannot grow it without bound; an evicted client re-enters
// with a full bucket (erring toward admitting).
type RateLimiter struct {
	rate  float64
	burst float64

	mu   sync.Mutex
	max  int
	ll   *list.List // front = most recently used
	ents map[string]*list.Element
}

type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter; rate <= 0 disables it (Allow always
// admits).
func NewRateLimiter(rate float64, burst, maxClients int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients < 1 {
		maxClients = 4096
	}
	return &RateLimiter{
		rate:  rate,
		burst: float64(burst),
		max:   maxClients,
		ll:    list.New(),
		ents:  make(map[string]*list.Element),
	}
}

// Allow spends one token from key's bucket at time now. When the bucket is
// empty it returns ok=false and how long until the next token accrues. The
// explicit now keeps the limiter deterministic under test.
func (l *RateLimiter) Allow(key string, now time.Time) (retryAfter time.Duration, ok bool) {
	if l == nil || l.rate <= 0 || key == "" {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var b *bucket
	if el, found := l.ents[key]; found {
		l.ll.MoveToFront(el)
		b = el.Value.(*bucket)
	} else {
		b = &bucket{key: key, tokens: l.burst, last: now}
		l.ents[key] = l.ll.PushFront(b)
		for l.ll.Len() > l.max {
			oldest := l.ll.Back()
			l.ll.Remove(oldest)
			delete(l.ents, oldest.Value.(*bucket).key)
		}
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / l.rate
	return time.Duration(need * float64(time.Second)), false
}
