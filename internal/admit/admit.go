// Package admit is the solve service's admission-control and
// overload-resilience layer. It decides, before a job consumes a queue
// slot, whether the server can still honor the job's deadline — and, once
// a worker picks the job up, under which regime it runs:
//
//   - Deadline-aware load shedding: an EWMA cost model per scenario-size
//     bucket estimates solve time at submit; a job whose remaining deadline
//     cannot cover estimated queue wait plus solve is rejected with a typed
//     *ShedError (HTTP 503 + Retry-After) instead of wasting solver time on
//     an answer nobody will read.
//   - Per-client token-bucket rate limiting keyed on API key or remote
//     address, rejecting with *RateLimitError (HTTP 429).
//   - Adaptive concurrency: an AIMD limiter on in-flight solves below the
//     worker count — additive increase on on-time completions,
//     multiplicative decrease on deadline misses and failures — keeping
//     latency bounded under mixed workloads.
//   - A circuit breaker over the degradation ladder: when the fraction of
//     bad outcomes (failures, deadline misses, degraded solves) crosses a
//     threshold, the breaker opens and the whole server runs heuristic-first
//     (SAMC/PRO directly, skipping doomed exact attempts); after a cooldown
//     a single half-open probe job runs the exact pipeline and its outcome
//     closes or re-opens the breaker.
//
// Two fault-injection sites make overload behaviour reproducible under
// internal/fault seeding: "admit.shed" forces shed decisions and
// "admit.breaker" forces breaker trips. Panic-kind rules at either site are
// recovered at the admission boundary and converted into the forced
// decision, so chaos storms exercise the paths without killing jobs.
package admit

import (
	"context"
	"fmt"
	"time"

	"sagrelay/internal/fault"
	"sagrelay/internal/obs"
)

// Fault-injection sites. One atomic load each when injection is off.
var (
	siteShed    = fault.Register("admit.shed")
	siteBreaker = fault.Register("admit.breaker")
)

// admitEstSeconds records the estimated queue-wait + solve seconds behind
// every shedding decision, next to the measured sag_job_latency_seconds it
// is meant to predict.
var admitEstSeconds = obs.Default.NewHistogram("sag_admit_est_seconds",
	"Estimated queue-wait + solve seconds at admission time (shed decisions included).",
	obs.SecondsBuckets)

// Options tunes a Controller. Zero values mean the documented defaults.
type Options struct {
	// Rate is the per-client sustained submission rate in requests/second;
	// 0 (or negative) disables rate limiting entirely.
	Rate float64
	// Burst is the per-client token-bucket depth; 0 derives it from Rate
	// (at least 1 token, so a conforming client is never starved).
	Burst int
	// MaxClients bounds the rate limiter's per-client bucket table (LRU
	// evicted; default 4096). An evicted client re-enters with a full
	// bucket, which errs toward admitting.
	MaxClients int
	// MaxInflight is the AIMD ceiling on concurrent solves (default 1 if
	// unset; the solve service passes its worker count).
	MaxInflight int
	// BreakerThreshold is the bad-outcome fraction over the sliding window
	// that trips the breaker into heuristic-first mode (default 0.5; any
	// value > 1 means the breaker never trips organically).
	BreakerThreshold float64
	// BreakerWindow is the sliding outcome window size (default 16).
	BreakerWindow int
	// BreakerMinSamples is the minimum number of windowed outcomes before
	// the threshold is evaluated (default 8), so a single early failure
	// cannot trip a cold server.
	BreakerMinSamples int
	// BreakerCooldown is how long the breaker stays open before it admits
	// a half-open probe job (default 5s).
	BreakerCooldown time.Duration
	// DisableShed turns deadline-aware shedding off (rate limiting, the
	// AIMD limiter and the breaker are unaffected). Forced sheds via the
	// admit.shed fault site still fire.
	DisableShed bool
	// OnBreakerChange, when set, observes breaker state transitions (for
	// structured logging). Called with the breaker lock held; it must be
	// fast and must not call back into the Controller.
	OnBreakerChange func(from, to BreakerState)
}

func (o Options) withDefaults() Options {
	if o.Burst <= 0 {
		o.Burst = int(o.Rate)
		if o.Burst < 1 {
			o.Burst = 1
		}
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 4096
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 1
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 0.5
	}
	if o.BreakerWindow <= 0 {
		o.BreakerWindow = 16
	}
	if o.BreakerMinSamples <= 0 {
		o.BreakerMinSamples = 8
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	return o
}

// ShedError is the typed rejection of a job whose deadline cannot cover the
// estimated queue wait plus solve time (or that an armed admit.shed fault
// rejected). The HTTP layer maps it to 503 with a Retry-After header.
type ShedError struct {
	// Reason is non-empty for forced (fault-injected) sheds.
	Reason string
	// EstSolve and EstWait are the cost-model estimates behind an organic
	// shed; Deadline is the budget they exceeded.
	EstSolve, EstWait, Deadline time.Duration
	// RetryAfter suggests when the backlog should have drained.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	if e.Reason != "" {
		return "admit: load shed: " + e.Reason
	}
	return fmt.Sprintf("admit: load shed: estimated queue wait %v + solve %v exceeds deadline %v",
		e.EstWait.Round(time.Millisecond), e.EstSolve.Round(time.Millisecond), e.Deadline)
}

// RateLimitError is the typed rejection of a client that exhausted its
// token bucket. The HTTP layer maps it to 429 with a Retry-After header.
type RateLimitError struct {
	Client     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("admit: client %s rate limited; retry in %v", e.Client, e.RetryAfter.Round(time.Millisecond))
}

// Decision carries the cost-model estimates behind an admitted job, for the
// job's admit span. Zero for cache hits and cold-model admissions.
type Decision struct {
	EstSolve time.Duration
	EstWait  time.Duration
}

// Controller glues the four mechanisms together for one server. All methods
// are safe for concurrent use.
type Controller struct {
	opts Options
	cost *CostModel
	rl   *RateLimiter
	aimd *AIMD
	br   *Breaker
}

// New returns a Controller with opts' defaults applied.
func New(opts Options) *Controller {
	opts = opts.withDefaults()
	c := &Controller{
		opts: opts,
		cost: NewCostModel(),
		rl:   NewRateLimiter(opts.Rate, opts.Burst, opts.MaxClients),
		aimd: NewAIMD(1, opts.MaxInflight),
		br: NewBreaker(opts.BreakerThreshold, opts.BreakerWindow,
			opts.BreakerMinSamples, opts.BreakerCooldown),
	}
	if opts.OnBreakerChange != nil {
		c.br.SetOnChange(opts.OnBreakerChange)
	}
	return c
}

// AllowClient applies per-client rate limiting. An empty client (internal
// callers: replay, smoke harnesses, in-process tests) is never limited. The
// returned error, if any, is a *RateLimitError.
func (c *Controller) AllowClient(client string) error {
	if client == "" {
		return nil
	}
	retry, ok := c.rl.Allow(client, time.Now())
	if ok {
		return nil
	}
	return &RateLimitError{Client: client, RetryAfter: retry}
}

// Admit makes the deadline-aware shedding decision for a cache-missing
// submission: sizeClass buckets the scenario (SizeClass), queued is the
// current queue depth, and deadline the job's effective time budget. The
// returned error, if any, is a *ShedError; a cold cost model admits
// everything.
func (c *Controller) Admit(sizeClass, queued int, deadline time.Duration) (Decision, error) {
	// Queue wait: the backlog drains at roughly (mean solve time / effective
	// concurrency); the AIMD limit is the honest concurrency, not the static
	// worker count. A lone submission has no batch siblings ahead of it.
	return c.AdmitBatch(sizeClass, queued, 0, deadline)
}

// AdmitBatch is Admit for one item of a batch submission. Batch items are
// admitted together, before any of them holds a queue slot, so the queue
// depth alone under-counts the work ahead of item k: its k-1 admitted
// siblings are invisible to the pool until the batch feeder enqueues them.
// batchAhead is the summed EstSolve of those earlier, admitted-but-not-yet-
// queued siblings; it is divided by the same effective concurrency as the
// generic backlog, so the estimate stays honest for both the first item of
// a batch (batchAhead 0 — identical to Admit) and the hundredth. Each item
// is shed individually: a returned *ShedError rejects this item only, never
// the batch.
func (c *Controller) AdmitBatch(sizeClass, queued int, batchAhead, deadline time.Duration) (Decision, error) {
	var d Decision
	if err := fireSite(siteShed); err != nil {
		return d, &ShedError{Reason: "fault injection: " + err.Error(), RetryAfter: time.Second}
	}
	if c.opts.DisableShed {
		return d, nil
	}
	est, mean, ok := c.cost.Estimate(sizeClass)
	if !ok {
		return d, nil
	}
	workers := c.aimd.Limit()
	if workers < 1 {
		workers = 1
	}
	wait := (mean*float64(queued) + batchAhead.Seconds()) / float64(workers)
	d.EstSolve = time.Duration(est * float64(time.Second))
	d.EstWait = time.Duration(wait * float64(time.Second))
	admitEstSeconds.Observe(est + wait)
	if deadline > 0 && d.EstSolve+d.EstWait > deadline {
		retry := d.EstWait
		if retry < time.Second {
			retry = time.Second
		}
		return d, &ShedError{
			EstSolve:   d.EstSolve,
			EstWait:    d.EstWait,
			Deadline:   deadline,
			RetryAfter: retry,
		}
	}
	return d, nil
}

// Grant is the token a worker holds while its solve runs: the breaker mode
// it was issued under plus the AIMD slot. Finish releases it; a second
// Finish is a no-op, so callers can install a deferred backstop Finish for
// panic paths.
type Grant struct {
	heuristicFirst bool
	probe          bool
	done           chan struct{} // closed by the first Finish
}

// HeuristicFirst reports whether the breaker issued this job in
// heuristic-first mode (exact stages downgraded before the pipeline runs).
func (g *Grant) HeuristicFirst() bool { return g.heuristicFirst }

// Probe reports whether this job is the breaker's half-open probe.
func (g *Grant) Probe() bool { return g.probe }

// Begin is called by a worker about to run a job: it consults the breaker
// for the execution mode and blocks until the AIMD limiter grants an
// in-flight slot (or ctx dies, in which case no slot is held and any probe
// claim is returned).
func (c *Controller) Begin(ctx context.Context) (*Grant, error) {
	hf, probe := c.br.Allow(time.Now())
	if err := c.aimd.Acquire(ctx); err != nil {
		if probe {
			c.br.AbortProbe()
		}
		return nil, err
	}
	return &Grant{heuristicFirst: hf, probe: probe, done: make(chan struct{})}, nil
}

// Outcome summarizes a finished solve for the cost model, the AIMD limiter
// and the breaker.
type Outcome struct {
	// SizeClass is the scenario's cost-model bucket (SizeClass).
	SizeClass int
	// Seconds is the solve's wall-clock time.
	Seconds float64
	// Failed is a non-cancellation error or panic; DeadlineMiss a solve
	// that ran out of its deadline; Degraded a solution that used the
	// fallback ladder.
	Failed, DeadlineMiss, Degraded bool
}

// Finish releases g's in-flight slot and feeds o to the cost model, the
// AIMD limiter and the breaker. Calling it twice for the same grant (or
// with a nil grant) is a no-op: the first outcome wins.
func (c *Controller) Finish(g *Grant, o Outcome) {
	if g == nil {
		return
	}
	select {
	case <-g.done:
		return
	default:
		close(g.done)
	}
	bad := o.Failed || o.DeadlineMiss || o.Degraded
	if g.heuristicFirst {
		// Heuristic-first solutions are degraded by construction; only real
		// trouble (failure, deadline miss) should shrink concurrency.
		bad = o.Failed || o.DeadlineMiss
	}
	c.aimd.Release(!bad)
	if !o.Failed && !g.heuristicFirst && o.Seconds > 0 {
		// Heuristic-first solves are deliberately cheap and would drag the
		// estimate for the exact pipeline down; keep them out of the model.
		c.cost.Observe(o.SizeClass, o.Seconds)
	}
	now := time.Now()
	if err := fireSite(siteBreaker); err != nil {
		c.br.ForceTrip(now)
		if g.probe {
			c.br.AbortProbe()
		}
		return
	}
	if g.probe {
		c.br.Record(bad, true, now)
		return
	}
	if !g.heuristicFirst {
		c.br.Record(o.Failed || o.DeadlineMiss || o.Degraded, false, now)
	}
}

// BreakerState returns the breaker position as a gauge value: 0 closed,
// 1 open, 2 half-open.
func (c *Controller) BreakerState() int64 { return int64(c.br.State()) }

// BreakerTrips returns how many times the breaker has opened.
func (c *Controller) BreakerTrips() int64 { return c.br.Trips() }

// InflightLimit returns the AIMD limiter's current concurrency limit.
func (c *Controller) InflightLimit() int64 { return int64(c.aimd.Limit()) }

// fireSite runs a fault check with panic-kind rules recovered into plain
// errors: an injected panic at an admission site must become the forced
// decision, never a dead job.
func fireSite(site string) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError(site, v)
		}
	}()
	return fault.Check(site)
}
