package admit

import (
	"context"
	"sync"
)

// AIMD is an additive-increase / multiplicative-decrease limiter on
// concurrent solves, the same control law TCP uses for its congestion
// window: every good completion (on time, no failure) raises the limit by
// one, every bad one halves it. It sits below the worker pool's static
// count, so under a storm of deadline misses the server voluntarily runs
// fewer solves at once and each one gets more of the machine — bounding
// latency instead of thrashing.
type AIMD struct {
	mu   sync.Mutex
	cond *sync.Cond
	// limit is kept as a float so halving accumulates fractionally; the
	// effective integer limit is max(min, int(limit)) capped at max.
	limit    float64
	inflight int
	min, max int
}

// NewAIMD builds a limiter starting at its ceiling.
func NewAIMD(min, max int) *AIMD {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	a := &AIMD{limit: float64(max), min: min, max: max}
	a.cond = sync.NewCond(&a.mu)
	return a
}

func (a *AIMD) limitLocked() int {
	l := int(a.limit)
	if l < a.min {
		l = a.min
	}
	if l > a.max {
		l = a.max
	}
	return l
}

// Limit returns the current effective concurrency limit.
func (a *AIMD) Limit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limitLocked()
}

// Inflight returns how many slots are currently held.
func (a *AIMD) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Acquire blocks until an in-flight slot is free or ctx is done. The
// watcher goroutine takes the mutex before broadcasting, so a waiter is
// either parked in Wait (and woken) or has not yet re-checked ctx — no
// lost wakeups.
func (a *AIMD) Acquire(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.mu.Unlock() //nolint:staticcheck // empty section: fence against check-then-Wait race
			a.cond.Broadcast()
		case <-stop:
		}
	}()
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if a.inflight < a.limitLocked() {
			a.inflight++
			return nil
		}
		a.cond.Wait()
	}
}

// Release frees a slot and adjusts the limit: +1 on a good completion,
// halved on a bad one, clamped to [min, max].
func (a *AIMD) Release(good bool) {
	a.mu.Lock()
	if a.inflight > 0 {
		a.inflight--
	}
	if good {
		a.limit++
		if a.limit > float64(a.max) {
			a.limit = float64(a.max)
		}
	} else {
		a.limit /= 2
		if a.limit < float64(a.min) {
			a.limit = float64(a.min)
		}
	}
	a.mu.Unlock()
	a.cond.Broadcast()
}
