package par

import (
	"errors"
	"sync"
	"time"

	"sagrelay/internal/fault"
)

// ErrQueueFull reports a Submit against a Pool whose bounded queue is at
// capacity. Callers translate it into backpressure (the job server answers
// 429).
var ErrQueueFull = errors.New("par: task queue full")

// ErrPoolClosed reports a Submit against a Pool that has begun shutting
// down.
var ErrPoolClosed = errors.New("par: pool closed")

// sitePoolTask is the fault-injection point in worker task dispatch; one
// atomic load per task when injection is off.
var sitePoolTask = fault.Register("par.pool.task")

// Pool is a long-lived bounded worker pool: a fixed set of goroutines
// draining a bounded FIFO task queue. It is the service-shaped counterpart
// of ForEach — instead of fanning a known index range out and joining, a
// Pool accepts tasks over its lifetime and applies backpressure when the
// queue is full. The HTTP job server runs every solve through one.
//
// Workers recover panicking tasks: one bad task can never take the process
// down. The recovered panic is converted into a *fault.PanicError, counted
// process-wide (fault.RecoveredPanics) and passed to the handler installed
// with SetPanicHandler. The panic value is otherwise swallowed — tasks that
// own external completion state (job tables, WaitGroups) must install
// their own recover to settle it, because the pool cannot know what a
// half-run task left behind.
type Pool struct {
	tasks   chan func()
	workers int
	wg      sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	onPanic func(*fault.PanicError)
}

// NewPool starts a pool of workers goroutines (<= 0 means GOMAXPROCS)
// behind a queue holding up to depth pending tasks (depth < 0 is treated
// as 0: Submit only succeeds when a worker is free to take the task soon).
func NewPool(workers, depth int) *Pool {
	if depth < 0 {
		depth = 0
	}
	p := &Pool{tasks: make(chan func(), depth), workers: DefaultWorkers(workers)}
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				p.run(task)
			}
		}()
	}
	return p
}

// Workers returns the pool's worker-goroutine count.
func (p *Pool) Workers() int { return p.workers }

// Len returns the number of queued-but-not-yet-dispatched tasks; admission
// control reads it as the queue depth behind its wait estimates.
func (p *Pool) Len() int { return len(p.tasks) }

// Cap returns the task queue's capacity.
func (p *Pool) Cap() int { return cap(p.tasks) }

// SetPanicHandler installs fn, called with every panic a worker recovers
// (nil removes it). The handler runs on the worker goroutine and must be
// safe for concurrent calls from multiple workers.
func (p *Pool) SetPanicHandler(fn func(*fault.PanicError)) {
	p.mu.Lock()
	p.onPanic = fn
	p.mu.Unlock()
}

func (p *Pool) panicHandler() func(*fault.PanicError) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.onPanic
}

// run executes one task under panic isolation. An injected dispatch fault
// (sitePoolTask) exercises the recovery path without swallowing the task:
// accepted tasks must run exactly once, or submitter-side completion
// accounting (job states, in-flight WaitGroups) would leak forever.
func (p *Pool) run(task func()) {
	func() {
		defer p.recoverTask()
		if err := fault.Check(sitePoolTask); err != nil {
			// Error/cancel rules at this site have no channel back to the
			// submitter; surface them through the panic-recovery path.
			panic(err)
		}
	}()
	defer p.recoverTask()
	task()
}

// recoverTask converts a panicking task into a counted *fault.PanicError
// delivered to the registered handler; the worker goroutine survives.
func (p *Pool) recoverTask() {
	if v := recover(); v != nil {
		pe := fault.NewPanicError("par.pool.task", v)
		if fn := p.panicHandler(); fn != nil {
			fn(pe)
		}
	}
}

// Submit enqueues task for execution. It never blocks: when the queue is
// full it returns ErrQueueFull, and after Close it returns ErrPoolClosed.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrQueueFull
	}
}

// SubmitBlocking enqueues task, waiting for queue space instead of
// returning ErrQueueFull. It exists for startup-time journal replay, where
// the recovered backlog may exceed the queue depth before the server
// starts accepting traffic. After Close it returns ErrPoolClosed.
func (p *Pool) SubmitBlocking(task func()) error {
	for {
		err := p.Submit(task)
		if !errors.Is(err, ErrQueueFull) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops accepting tasks, waits for the queue to drain and every
// running task to finish, then returns. It is idempotent. Tasks that must
// abort early instead of draining should observe their own context; Close
// only guarantees the pool's goroutines are gone when it returns.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
