package par

import (
	"errors"
	"sync"
)

// ErrQueueFull reports a Submit against a Pool whose bounded queue is at
// capacity. Callers translate it into backpressure (the job server answers
// 429).
var ErrQueueFull = errors.New("par: task queue full")

// ErrPoolClosed reports a Submit against a Pool that has begun shutting
// down.
var ErrPoolClosed = errors.New("par: pool closed")

// Pool is a long-lived bounded worker pool: a fixed set of goroutines
// draining a bounded FIFO task queue. It is the service-shaped counterpart
// of ForEach — instead of fanning a known index range out and joining, a
// Pool accepts tasks over its lifetime and applies backpressure when the
// queue is full. The HTTP job server runs every solve through one.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool of workers goroutines (<= 0 means GOMAXPROCS)
// behind a queue holding up to depth pending tasks (depth < 0 is treated
// as 0: Submit only succeeds when a worker is free to take the task soon).
func NewPool(workers, depth int) *Pool {
	if depth < 0 {
		depth = 0
	}
	p := &Pool{tasks: make(chan func(), depth)}
	for w := 0; w < DefaultWorkers(workers); w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit enqueues task for execution. It never blocks: when the queue is
// full it returns ErrQueueFull, and after Close it returns ErrPoolClosed.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops accepting tasks, waits for the queue to drain and every
// running task to finish, then returns. It is idempotent. Tasks that must
// abort early instead of draining should observe their own context; Close
// only guarantees the pool's goroutines are gone when it returns.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
