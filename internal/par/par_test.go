package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		got := make([]int, n)
		err := ForEach(workers, n, func(i int) error {
			got[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: task %d not run (got %d)", workers, i, v)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 16, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 11:
				return errors.New("high")
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachCancelsAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("no cancellation: every task ran after the first error")
	}
}

func TestForEachSequentialEarlyExit(t *testing.T) {
	var ran int
	err := ForEach(1, 100, func(i int) error {
		ran++
		if i == 4 {
			return fmt.Errorf("stop at %d", i)
		}
		return nil
	})
	if err == nil || ran != 5 {
		t.Fatalf("ran=%d err=%v, want inline early exit after task 4", ran, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers(5) != 5 {
		t.Error("explicit count not respected")
	}
	if DefaultWorkers(0) < 1 || DefaultWorkers(-3) < 1 {
		t.Error("default must be at least 1")
	}
}
