package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sagrelay/internal/fault"
)

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()

	var mu sync.Mutex
	var caught []*fault.PanicError
	p.SetPanicHandler(func(pe *fault.PanicError) {
		mu.Lock()
		caught = append(caught, pe)
		mu.Unlock()
	})

	before := fault.RecoveredPanics()
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(4) // the panicking task never reaches wg.Done; count survivors only
	if err := p.Submit(func() { panic("boom") }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.Submit(func() { defer wg.Done(); ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if got := ran.Load(); got != 4 {
		t.Fatalf("tasks after panic ran %d times, want 4", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(caught) != 1 {
		t.Fatalf("panic handler called %d times, want 1", len(caught))
	}
	if caught[0].Site != "par.pool.task" || caught[0].Value != "boom" {
		t.Fatalf("caught = %+v", caught[0])
	}
	if len(caught[0].Stack) == 0 {
		t.Fatal("recovered panic has no stack")
	}
	if fault.RecoveredPanics() <= before {
		t.Fatal("RecoveredPanics did not increase")
	}
}

func TestPoolInjectedDispatchFaultStillRunsTask(t *testing.T) {
	// An injected fault at the dispatch site must exercise the recovery
	// path without swallowing the task: accepted tasks run exactly once.
	if err := fault.EnableSpec("par.pool.task=panic:n=1", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	p := NewPool(1, 4)
	defer p.Close()
	var handled atomic.Int64
	p.SetPanicHandler(func(*fault.PanicError) { handled.Add(1) })

	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := p.Submit(func() { defer wg.Done(); ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 3 {
		t.Fatalf("tasks ran %d times under injected dispatch panic, want 3", got)
	}
	if handled.Load() != 1 {
		t.Fatalf("panic handler called %d times, want 1", handled.Load())
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := make([]atomic.Bool, 8)
		err := ForEach(workers, len(ran), func(i int) error {
			if i == 3 {
				panic("zone blew up")
			}
			ran[i].Store(true)
			return nil
		})
		var pe *fault.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *fault.PanicError", workers, err)
		}
		if pe.Site != "par.foreach" || pe.Value != "zone blew up" {
			t.Fatalf("workers=%d: pe = %+v", workers, pe)
		}
	}
}

func TestSubmitBlockingWaitsForSpace(t *testing.T) {
	p := NewPool(1, 0)
	release := make(chan struct{})
	if err := p.SubmitBlocking(func() { <-release }); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var second atomic.Bool
	go func() {
		done <- p.SubmitBlocking(func() { second.Store(true) })
	}()
	select {
	case err := <-done:
		// Acceptable: the worker may have parked the first task and freed
		// the (zero-depth) queue slot already.
		if err != nil {
			t.Fatalf("SubmitBlocking: %v", err)
		}
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err, ok := <-done, true; !ok || err != nil {
		t.Fatalf("SubmitBlocking after release: %v", err)
	}
	p.Close()
	if !second.Load() {
		t.Fatal("blocking-submitted task never ran")
	}
	if err := p.SubmitBlocking(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("SubmitBlocking after Close = %v, want ErrPoolClosed", err)
	}
}
