// Package par provides the bounded worker pool shared by the experiment
// harness, the per-zone solvers and the solve service. It exists so every
// layer of the solve engine parallelizes the same way: index-addressed
// tasks fanned out over a fixed worker count, results written into
// pre-sized slices by the caller (never append order), and deterministic
// first-error reporting. Pool adds the long-lived variant used by the HTTP
// job server: a fixed worker set draining a bounded queue.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"sagrelay/internal/fault"
)

// callTask invokes fn(i) with panic isolation: a panicking task becomes a
// *fault.PanicError for its index (counted process-wide), failing the
// fan-out like any other task error instead of killing the process. The
// boundary matters most for the per-zone solver fan-outs, which run on
// bare goroutines far from any recover the service layer installs.
func callTask(fn func(int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError("par.foreach", v)
		}
	}()
	return fn(i)
}

// DefaultWorkers resolves a worker-count knob: values <= 0 mean
// runtime.GOMAXPROCS(0).
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). The first error cancels the remaining
// unstarted tasks; already-running tasks finish. The returned error is the
// lowest-index error among the tasks that ran, so error reporting does not
// depend on goroutine scheduling. With workers == 1 the tasks run inline in
// index order with classic early-exit semantics and no goroutines at all.
//
// Determinism contract: fn must write its result into a caller-provided
// slot addressed by i. ForEach guarantees nothing about completion order.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachContext(context.Background(), workers, n, fn)
}

// ForEachContext is ForEach with cooperative cancellation: a cancelled ctx
// stops new tasks from starting (already-running tasks finish) and, when no
// task itself failed, the context's error is returned. Task errors keep
// priority over the cancellation error so deterministic lowest-index error
// reporting survives cancellation races. fn itself is responsible for
// observing ctx inside long-running tasks.
func ForEachContext(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := callTask(fn, i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	var (
		next int64 = -1 // atomically incremented task cursor
		stop atomic.Bool
		errs = make([]error, n)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || stop.Load() || ctx.Err() != nil {
					return
				}
				if err := callTask(fn, i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
