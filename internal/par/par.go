// Package par provides the bounded worker pool shared by the experiment
// harness and the per-zone solvers. It exists so every layer of the solve
// engine parallelizes the same way: index-addressed tasks fanned out over a
// fixed worker count, results written into pre-sized slices by the caller
// (never append order), and deterministic first-error reporting.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count knob: values <= 0 mean
// runtime.GOMAXPROCS(0).
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). The first error cancels the remaining
// unstarted tasks; already-running tasks finish. The returned error is the
// lowest-index error among the tasks that ran, so error reporting does not
// depend on goroutine scheduling. With workers == 1 the tasks run inline in
// index order with classic early-exit semantics and no goroutines at all.
//
// Determinism contract: fn must write its result into a caller-provided
// slot addressed by i. ForEach guarantees nothing about completion order.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next int64 = -1 // atomically incremented task cursor
		stop atomic.Bool
		errs = make([]error, n)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || stop.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
