package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	if n := ran.Load(); n != 50 {
		t.Fatalf("ran %d of 50 tasks", n)
	}
}

func TestPoolQueueFullBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.Submit(func() { defer wg.Done(); <-release }); err != nil {
		t.Fatal(err)
	}
	// One task occupies the worker; fill the depth-1 queue, then expect
	// backpressure. The occupying task may not have been picked up yet, so
	// allow one extra enqueue before demanding ErrQueueFull.
	full := false
	for i := 0; i < 3; i++ {
		if err := p.Submit(func() {}); errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
	}
	if !full {
		t.Error("queue never reported ErrQueueFull")
	}
	close(release)
	wg.Wait()
	p.Close()
}

func TestPoolClosedRejectsAndIsIdempotent(t *testing.T) {
	p := NewPool(2, 4)
	p.Close()
	p.Close() // must not panic
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
}

func TestForEachContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachContext(ctx, workers, 100000, func(i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n == 100000 {
			t.Errorf("workers=%d: cancellation did not stop the fan-out", workers)
		}
	}
}

func TestForEachContextTaskErrorWinsOverCancel(t *testing.T) {
	// When a task fails and the context is cancelled afterwards, the
	// deterministic lowest-index task error must still be reported.
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachContext(ctx, 4, 1000, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
}

func TestForEachContextNilBehavesLikeBackground(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachContext(context.Background(), 3, 20, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d of 20", ran.Load())
	}
}
