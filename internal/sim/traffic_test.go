package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunTrafficBasics(t *testing.T) {
	sc, sol := solved(t, 10, 21)
	rep, err := RunTraffic(sc, sol, TrafficOptions{Slots: 500, ArrivalRate: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated == 0 {
		t.Fatal("no packets generated")
	}
	if rep.Delivered+rep.Dropped > rep.Generated {
		t.Errorf("delivered %d + dropped %d exceeds generated %d", rep.Delivered, rep.Dropped, rep.Generated)
	}
	if rep.DeliveryRatio() < 0.5 {
		t.Errorf("delivery ratio %.2f too low at light load", rep.DeliveryRatio())
	}
	if rep.MeanDelay < 1 {
		t.Errorf("mean delay %v below one slot", rep.MeanDelay)
	}
	if rep.Slots != 500 {
		t.Errorf("Slots = %d", rep.Slots)
	}
	// Per-SS totals reconcile with fleet totals.
	g, d, dr := 0, 0, 0
	for _, s := range rep.PerSS {
		g += s.Generated
		d += s.Delivered
		dr += s.Dropped
	}
	if g != rep.Generated || d != rep.Delivered || dr != rep.Dropped {
		t.Errorf("per-SS totals (%d,%d,%d) != fleet (%d,%d,%d)", g, d, dr, rep.Generated, rep.Delivered, rep.Dropped)
	}
}

func TestRunTrafficDeterministic(t *testing.T) {
	sc, sol := solved(t, 8, 23)
	opts := TrafficOptions{Slots: 200, ArrivalRate: 0.3, Seed: 7}
	a, err := RunTraffic(sc, sol, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTraffic(sc, sol, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Generated != b.Generated || a.Delivered != b.Delivered || a.MeanDelay != b.MeanDelay {
		t.Error("same seed produced different simulations")
	}
}

func TestRunTrafficDelayAtLeastPathLength(t *testing.T) {
	sc, sol := solved(t, 8, 25)
	eval, err := Evaluate(sc, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunTraffic(sc, sol, TrafficOptions{Slots: 400, ArrivalRate: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.PerSS {
		if s.Delivered == 0 {
			continue
		}
		hops := float64(eval.Subscribers[s.SS].Hops())
		if s.MeanDelay < hops-1e-9 {
			t.Errorf("SS %d mean delay %.2f below its %v-hop path", s.SS, s.MeanDelay, hops)
		}
	}
}

func TestRunTrafficOverloadDrops(t *testing.T) {
	sc, sol := solved(t, 10, 27)
	light, err := RunTraffic(sc, sol, TrafficOptions{Slots: 300, ArrivalRate: 0.05, Seed: 5, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunTraffic(sc, sol, TrafficOptions{Slots: 300, ArrivalRate: 5, Seed: 5, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.DeliveryRatio() > light.DeliveryRatio() {
		t.Errorf("overload improved delivery: %.2f vs %.2f", heavy.DeliveryRatio(), light.DeliveryRatio())
	}
	if heavy.Dropped == 0 {
		t.Error("10x overload with tiny queues dropped nothing")
	}
	if heavy.PeakQueue > 8 {
		t.Errorf("peak queue %d exceeds cap 8", heavy.PeakQueue)
	}
}

func TestRunTrafficZeroRateDefaultsApplied(t *testing.T) {
	sc, sol := solved(t, 6, 29)
	rep, err := RunTraffic(sc, sol, TrafficOptions{Slots: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: rate 0.5 over 10 slots and 6 subscribers ~ 30 packets.
	if rep.Generated == 0 {
		t.Error("default arrival rate produced no packets")
	}
}

func TestRunTrafficRejectsInfeasible(t *testing.T) {
	sc, sol := solved(t, 6, 31)
	bad := *sol
	bad.Feasible = false
	if _, err := RunTraffic(sc, &bad, TrafficOptions{}); err == nil {
		t.Error("infeasible solution accepted")
	}
}

func TestPoissonSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := poisson(rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
	// Empirical mean of Poisson(2) over many draws.
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 2)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2) > 0.1 {
		t.Errorf("Poisson(2) empirical mean %v", mean)
	}
}

// Higher link budgets can only help delivery on the same arrival sequence.
func TestLinkUnitsMonotone(t *testing.T) {
	sc, sol := solved(t, 10, 33)
	slow, err := RunTraffic(sc, sol, TrafficOptions{Slots: 300, ArrivalRate: 1.5, Seed: 9, LinkUnits: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunTraffic(sc, sol, TrafficOptions{Slots: 300, ArrivalRate: 1.5, Seed: 9, LinkUnits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fast.DeliveryRatio() < slow.DeliveryRatio()-1e-9 {
		t.Errorf("more capacity hurt delivery: %.3f vs %.3f", fast.DeliveryRatio(), slow.DeliveryRatio())
	}
}
