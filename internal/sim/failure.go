package sim

import (
	"fmt"

	"sagrelay/internal/core"
	"sagrelay/internal/scenario"
)

// FailureKind identifies which tier's relay fails.
type FailureKind int

// Failure kinds. (Enums start at 1 so the zero value is invalid.)
const (
	// FailCoverage fails a coverage relay: its subscribers lose their
	// access links, and every path routed through it breaks.
	FailCoverage FailureKind = iota + 1
	// FailConnectivity fails a connectivity relay: the edge it subdivides
	// breaks, cutting every subscriber whose path crosses that edge.
	FailConnectivity
)

// String renders the kind.
func (k FailureKind) String() string {
	switch k {
	case FailCoverage:
		return "coverage"
	case FailConnectivity:
		return "connectivity"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure specifies a failed relay.
type Failure struct {
	Kind  FailureKind
	Index int // into Coverage.Relays or Connectivity.Relays
}

// FailureReport quantifies the impact of a relay failure.
type FailureReport struct {
	// Failure echoes the injected fault.
	Failure Failure
	// LostSubscribers are the subscriber indices with no working path to a
	// base station, ascending.
	LostSubscribers []int
	// LostFraction is len(LostSubscribers) / #subscribers.
	LostFraction float64
}

// InjectFailure computes which subscribers lose service when one relay
// fails, with no repair: a subscriber is lost when its access relay is the
// failed one, or its relay path to the base station crosses the failed
// relay's tree edge.
func InjectFailure(sc *scenario.Scenario, sol *core.Solution, f Failure) (*FailureReport, error) {
	if sol == nil || !sol.Feasible {
		return nil, fmt.Errorf("sim: need a feasible solution")
	}
	switch f.Kind {
	case FailCoverage:
		if f.Index < 0 || f.Index >= len(sol.Coverage.Relays) {
			return nil, fmt.Errorf("sim: coverage relay %d out of range [0,%d)", f.Index, len(sol.Coverage.Relays))
		}
	case FailConnectivity:
		if f.Index < 0 || f.Index >= len(sol.Connectivity.Relays) {
			return nil, fmt.Errorf("sim: connectivity relay %d out of range [0,%d)", f.Index, len(sol.Connectivity.Relays))
		}
	default:
		return nil, fmt.Errorf("sim: invalid failure kind %v", f.Kind)
	}
	// deadEdge is the tree edge severed by a connectivity-relay failure.
	deadEdge := -1
	if f.Kind == FailConnectivity {
		deadEdge = sol.Connectivity.Relays[f.Index].Edge
	}
	lost := make(map[int]bool)
	for j := range sc.Subscribers {
		a := sol.Coverage.AssignOf[j]
		if f.Kind == FailCoverage && a == f.Index {
			lost[j] = true
			continue
		}
		// Walk the tree; the path breaks if it crosses the dead edge or a
		// failed coverage relay acting as a forwarder. Edges are indexed by
		// their child coverage relay (one uplink edge per coverage relay).
		cur := a
		for steps := 0; ; steps++ {
			if steps > len(sol.Connectivity.Edges)+1 {
				return nil, fmt.Errorf("sim: path from relay %d does not terminate", a)
			}
			if f.Kind == FailCoverage && cur == f.Index {
				lost[j] = true
				break
			}
			e := sol.Connectivity.Edges[cur]
			if cur == deadEdge {
				lost[j] = true
				break
			}
			if e.ParentBS >= 0 {
				break
			}
			cur = e.ParentCoverage
		}
	}
	rep := &FailureReport{
		Failure:         f,
		LostSubscribers: sortedKeys(lost),
	}
	if n := sc.NumSS(); n > 0 {
		rep.LostFraction = float64(len(rep.LostSubscribers)) / float64(n)
	}
	return rep, nil
}

// WorstSingleFailure scans every relay on both tiers and returns the
// failure losing the most subscribers (ties: lowest tier/index). It is the
// resilience headline number a deployment reviewer asks for.
func WorstSingleFailure(sc *scenario.Scenario, sol *core.Solution) (*FailureReport, error) {
	if sol == nil || !sol.Feasible {
		return nil, fmt.Errorf("sim: need a feasible solution")
	}
	var worst *FailureReport
	consider := func(f Failure) error {
		rep, err := InjectFailure(sc, sol, f)
		if err != nil {
			return err
		}
		if worst == nil || len(rep.LostSubscribers) > len(worst.LostSubscribers) {
			worst = rep
		}
		return nil
	}
	for i := range sol.Coverage.Relays {
		if err := consider(Failure{Kind: FailCoverage, Index: i}); err != nil {
			return nil, err
		}
	}
	for i := range sol.Connectivity.Relays {
		if err := consider(Failure{Kind: FailConnectivity, Index: i}); err != nil {
			return nil, err
		}
	}
	if worst == nil {
		// A deployment with no relays at all cannot fail; report an empty
		// coverage failure.
		worst = &FailureReport{Failure: Failure{Kind: FailCoverage, Index: -1}}
	}
	return worst, nil
}
