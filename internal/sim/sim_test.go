package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"sagrelay/internal/core"
	"sagrelay/internal/scenario"
)

func solved(t *testing.T, nSS int, seed int64) (*scenario.Scenario, *core.Solution) {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: nSS, NumBS: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SAG(context.Background(), sc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Skip("infeasible draw")
	}
	return sc, sol
}

func TestEvaluateConfirmsConstruction(t *testing.T) {
	sc, sol := solved(t, 15, 2)
	rep, err := Evaluate(sc, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Subscribers) != sc.NumSS() {
		t.Fatalf("report covers %d of %d subscribers", len(rep.Subscribers), sc.NumSS())
	}
	// The construction guarantees both constraints; the independent
	// simulation must agree. (SNR evaluation here uses global interference
	// while construction uses per-zone; the ignorable-noise margin makes
	// both pass on benign instances.)
	if rep.SatisfiedRate != sc.NumSS() {
		t.Errorf("only %d/%d subscribers meet their rate", rep.SatisfiedRate, sc.NumSS())
	}
	if rep.SatisfiedSNR < sc.NumSS()-1 {
		t.Errorf("only %d/%d subscribers meet SNR", rep.SatisfiedSNR, sc.NumSS())
	}
	if rep.MinBottleneck <= 0 || math.IsInf(rep.MinBottleneck, 1) {
		t.Errorf("MinBottleneck = %v", rep.MinBottleneck)
	}
	if rep.MeanBottleneck < rep.MinBottleneck {
		t.Errorf("mean %v below min %v", rep.MeanBottleneck, rep.MinBottleneck)
	}
	if rep.MaxHops < 1 {
		t.Errorf("MaxHops = %d", rep.MaxHops)
	}
	if math.Abs(rep.TotalPower-(sol.PL+sol.PH)) > 1e-6 {
		t.Errorf("TotalPower %v != PL+PH %v", rep.TotalPower, sol.PL+sol.PH)
	}
}

func TestEvaluatePathsTerminateAtBS(t *testing.T) {
	sc, sol := solved(t, 12, 5)
	rep, err := Evaluate(sc, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range rep.Subscribers {
		if sr.BS < 0 || sr.BS >= len(sc.BaseStations) {
			t.Fatalf("subscriber %d terminates at invalid BS %d", sr.SS, sr.BS)
		}
		if len(sr.RelayHops) == 0 {
			t.Fatalf("subscriber %d has no relay hops", sr.SS)
		}
		last := sr.RelayHops[len(sr.RelayHops)-1]
		if !last.To.AlmostEqual(sc.BaseStations[sr.BS].Pos, 1e-9) {
			t.Errorf("subscriber %d's last hop ends at %v, not BS %d", sr.SS, last.To, sr.BS)
		}
		if sr.Hops() != 1+len(sr.RelayHops) {
			t.Error("Hops() inconsistent")
		}
		// Bottleneck is the min across hops.
		min := sr.Access.Capacity
		for _, h := range sr.RelayHops {
			if h.Capacity < min {
				min = h.Capacity
			}
		}
		if math.Abs(min-sr.Bottleneck) > 1e-12 {
			t.Errorf("subscriber %d bottleneck %v != min hop %v", sr.SS, sr.Bottleneck, min)
		}
	}
}

func TestEvaluateRejectsBadInput(t *testing.T) {
	sc, sol := solved(t, 8, 7)
	if _, err := Evaluate(sc, nil, Options{}); err == nil {
		t.Error("nil solution accepted")
	}
	bad := *sol
	bad.Feasible = false
	if _, err := Evaluate(sc, &bad, Options{}); err == nil {
		t.Error("infeasible solution accepted")
	}
}

func TestBandwidthScalesCapacity(t *testing.T) {
	sc, sol := solved(t, 8, 9)
	r1, err := Evaluate(sc, sol, Options{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Evaluate(sc, sol, Options{Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r10.MinBottleneck-10*r1.MinBottleneck) > 1e-6*r10.MinBottleneck {
		t.Errorf("bandwidth scaling broken: %v vs %v", r10.MinBottleneck, r1.MinBottleneck)
	}
}

func TestInjectCoverageFailure(t *testing.T) {
	sc, sol := solved(t, 12, 11)
	rep, err := InjectFailure(sc, sol, Failure{Kind: FailCoverage, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	// At least the relay's own subscribers are lost.
	covered := sol.Coverage.Relays[0].Covers
	if len(rep.LostSubscribers) < len(covered) {
		t.Errorf("lost %d < %d direct subscribers", len(rep.LostSubscribers), len(covered))
	}
	lost := make(map[int]bool)
	for _, s := range rep.LostSubscribers {
		lost[s] = true
	}
	for _, s := range covered {
		if !lost[s] {
			t.Errorf("direct subscriber %d not reported lost", s)
		}
	}
	wantFrac := float64(len(rep.LostSubscribers)) / float64(sc.NumSS())
	if math.Abs(rep.LostFraction-wantFrac) > 1e-12 {
		t.Errorf("LostFraction = %v, want %v", rep.LostFraction, wantFrac)
	}
}

func TestInjectConnectivityFailure(t *testing.T) {
	sc, sol := solved(t, 12, 13)
	if sol.Connectivity.NumRelays() == 0 {
		t.Skip("no connectivity relays to fail")
	}
	rep, err := InjectFailure(sc, sol, Failure{Kind: FailConnectivity, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The severed edge's child subtree is cut: at least the child relay's
	// own subscribers are lost.
	edge := sol.Connectivity.Relays[0].Edge
	child := sol.Connectivity.Edges[edge].Child
	lost := make(map[int]bool)
	for _, s := range rep.LostSubscribers {
		lost[s] = true
	}
	for _, s := range sol.Coverage.Relays[child].Covers {
		if !lost[s] {
			t.Errorf("subscriber %d behind the severed edge not lost", s)
		}
	}
}

func TestInjectFailureValidation(t *testing.T) {
	sc, sol := solved(t, 8, 15)
	if _, err := InjectFailure(sc, sol, Failure{Kind: FailCoverage, Index: 999}); err == nil {
		t.Error("out-of-range coverage failure accepted")
	}
	if _, err := InjectFailure(sc, sol, Failure{Kind: FailConnectivity, Index: -1}); err == nil {
		t.Error("negative connectivity index accepted")
	}
	if _, err := InjectFailure(sc, sol, Failure{Kind: FailureKind(0), Index: 0}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := InjectFailure(sc, nil, Failure{Kind: FailCoverage, Index: 0}); err == nil {
		t.Error("nil solution accepted")
	}
}

func TestWorstSingleFailure(t *testing.T) {
	sc, sol := solved(t, 15, 17)
	worst, err := WorstSingleFailure(sc, sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(worst.LostSubscribers) == 0 {
		t.Error("no failure loses any subscriber?")
	}
	// It must actually be the maximum over a few spot checks.
	for i := 0; i < len(sol.Coverage.Relays); i++ {
		rep, err := InjectFailure(sc, sol, Failure{Kind: FailCoverage, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.LostSubscribers) > len(worst.LostSubscribers) {
			t.Errorf("failure %v loses %d > worst %d", rep.Failure, len(rep.LostSubscribers), len(worst.LostSubscribers))
		}
	}
}

func TestFailureKindString(t *testing.T) {
	if FailCoverage.String() != "coverage" || FailConnectivity.String() != "connectivity" {
		t.Error("kind strings wrong")
	}
}

// Property: failure impact is monotone in scope — failing a coverage relay
// loses at least its direct subscribers and never more than all of them.
func TestFailureBounds(t *testing.T) {
	f := func(seed int64) bool {
		sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: 10, NumBS: 2, Seed: seed})
		if err != nil {
			return false
		}
		sol, err := core.SAG(context.Background(), sc, core.Config{})
		if err != nil || !sol.Feasible {
			return true
		}
		for i := range sol.Coverage.Relays {
			rep, err := InjectFailure(sc, sol, Failure{Kind: FailCoverage, Index: i})
			if err != nil {
				return false
			}
			if len(rep.LostSubscribers) < len(sol.Coverage.Relays[i].Covers) {
				return false
			}
			if len(rep.LostSubscribers) > sc.NumSS() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
