package sim

import (
	"fmt"
	"math"
	"math/rand"

	"sagrelay/internal/core"
	"sagrelay/internal/scenario"
)

// TrafficOptions configure the slotted store-and-forward downlink
// simulation.
type TrafficOptions struct {
	// Slots is the number of time slots to simulate; 0 means 1000.
	Slots int
	// ArrivalRate is the mean Poisson packet arrivals per subscriber per
	// slot; 0 means 0.5.
	ArrivalRate float64
	// QueueCap bounds each link's transmit queue (packets); overflow is
	// dropped. 0 means 64.
	QueueCap int
	// LinkUnits converts a hop's Shannon capacity (b/s/Hz) into a per-slot
	// packet budget: budget = max(1, floor(LinkUnits * capacity)).
	// 0 means 1.
	LinkUnits float64
	// Seed seeds the arrival process.
	Seed int64
	// Sim configures the link-level evaluation backing the capacities.
	Sim Options
}

func (o TrafficOptions) withDefaults() TrafficOptions {
	if o.Slots <= 0 {
		o.Slots = 1000
	}
	if o.ArrivalRate <= 0 {
		o.ArrivalRate = 0.5
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.LinkUnits <= 0 {
		o.LinkUnits = 1
	}
	return o
}

// SSTraffic aggregates one subscriber's simulated traffic.
type SSTraffic struct {
	// SS is the subscriber index.
	SS int
	// Generated, Delivered and Dropped count this subscriber's packets.
	Generated, Delivered, Dropped int
	// MeanDelay is the mean slots-in-flight of delivered packets (path
	// length is a lower bound: one hop per slot).
	MeanDelay float64
}

// TrafficReport aggregates a whole simulation run.
type TrafficReport struct {
	// PerSS holds per-subscriber statistics in subscriber order.
	PerSS []SSTraffic
	// Generated, Delivered and Dropped are the fleet totals.
	Generated, Delivered, Dropped int
	// MeanDelay is the mean delivery delay in slots across all delivered
	// packets.
	MeanDelay float64
	// PeakQueue is the largest queue length observed on any link.
	PeakQueue int
	// Slots echoes the simulated horizon.
	Slots int
}

// DeliveryRatio returns Delivered/Generated (1 when nothing was generated).
func (r *TrafficReport) DeliveryRatio() float64 {
	if r.Generated == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Generated)
}

// packet is one in-flight downlink packet.
type packet struct {
	ss    int
	born  int
	route []int // remaining link ids, front first
}

// link is one directed store-and-forward hop.
type link struct {
	budget   int // packets per slot
	queue    []packet
	incoming []packet
}

// RunTraffic simulates downlink traffic over a solved deployment: packets
// for each subscriber arrive Poisson at its terminating base station and
// are forwarded hop-by-hop (one hop per slot, per-link budgets from the
// allocated-power Shannon capacities, bounded FIFO queues) down the
// connectivity tree and across the access link. It reports delivery
// ratios, delays and queue pressure — the system-level behaviour the
// placement algorithms' capacity constraints are supposed to guarantee.
func RunTraffic(sc *scenario.Scenario, sol *core.Solution, opts TrafficOptions) (*TrafficReport, error) {
	opts = opts.withDefaults()
	eval, err := Evaluate(sc, sol, opts.Sim)
	if err != nil {
		return nil, fmt.Errorf("sim: traffic: %w", err)
	}
	// Build the directed link set. Uplink reports list hops coverage->BS;
	// downlink routes reverse them. Links shared by several subscribers
	// (tree trunks) are deduplicated by their endpoints.
	type key struct{ fx, fy, tx, ty float64 }
	linkID := make(map[key]int)
	var links []*link
	budgetOf := func(capacity float64) int {
		b := int(math.Floor(opts.LinkUnits * capacity))
		if b < 1 {
			b = 1
		}
		return b
	}
	idFor := func(l Link, reversed bool) int {
		k := key{l.From.X, l.From.Y, l.To.X, l.To.Y}
		if reversed {
			k = key{l.To.X, l.To.Y, l.From.X, l.From.Y}
		}
		if id, ok := linkID[k]; ok {
			return id
		}
		links = append(links, &link{budget: budgetOf(l.Capacity)})
		linkID[k] = len(links) - 1
		return len(links) - 1
	}
	routes := make([][]int, sc.NumSS())
	for _, sr := range eval.Subscribers {
		var route []int
		// Downlink: BS -> ... -> coverage relay (reverse relay hops), then
		// the access link to the subscriber.
		for i := len(sr.RelayHops) - 1; i >= 0; i-- {
			route = append(route, idFor(sr.RelayHops[i], true))
		}
		route = append(route, idFor(sr.Access, false))
		routes[sr.SS] = route
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &TrafficReport{Slots: opts.Slots, PerSS: make([]SSTraffic, sc.NumSS())}
	for j := range rep.PerSS {
		rep.PerSS[j].SS = j
	}
	totalDelay := 0.0
	perDelay := make([]float64, sc.NumSS())

	for slot := 0; slot < opts.Slots; slot++ {
		// Arrivals enqueue at the first link of each subscriber's route.
		for j := range routes {
			n := poisson(rng, opts.ArrivalRate)
			for p := 0; p < n; p++ {
				rep.Generated++
				rep.PerSS[j].Generated++
				first := links[routes[j][0]]
				if len(first.queue)+len(first.incoming) >= opts.QueueCap {
					rep.Dropped++
					rep.PerSS[j].Dropped++
					continue
				}
				first.incoming = append(first.incoming, packet{ss: j, born: slot, route: routes[j][1:]})
			}
		}
		// Transmissions: each link forwards up to its budget, two-phase so
		// a packet moves at most one hop per slot.
		for _, l := range links {
			n := l.budget
			if n > len(l.queue) {
				n = len(l.queue)
			}
			for i := 0; i < n; i++ {
				pkt := l.queue[i]
				if len(pkt.route) == 0 {
					// Delivered to the subscriber.
					delay := float64(slot - pkt.born + 1)
					rep.Delivered++
					rep.PerSS[pkt.ss].Delivered++
					totalDelay += delay
					perDelay[pkt.ss] += delay
					continue
				}
				next := links[pkt.route[0]]
				if len(next.queue)+len(next.incoming) >= opts.QueueCap {
					rep.Dropped++
					rep.PerSS[pkt.ss].Dropped++
					continue
				}
				next.incoming = append(next.incoming, packet{ss: pkt.ss, born: pkt.born, route: pkt.route[1:]})
			}
			l.queue = l.queue[n:]
		}
		// Merge arrivals and track queue pressure.
		for _, l := range links {
			l.queue = append(l.queue, l.incoming...)
			l.incoming = l.incoming[:0]
			if len(l.queue) > rep.PeakQueue {
				rep.PeakQueue = len(l.queue)
			}
		}
	}
	if rep.Delivered > 0 {
		rep.MeanDelay = totalDelay / float64(rep.Delivered)
	}
	for j := range rep.PerSS {
		if d := rep.PerSS[j].Delivered; d > 0 {
			rep.PerSS[j].MeanDelay = perDelay[j] / float64(d)
		}
	}
	return rep, nil
}

// poisson samples a Poisson variate by Knuth's method (fine for the small
// per-slot rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // lambda absurdly large; cap defensively
		}
	}
}
