// Package sim evaluates solved deployments at the link level: it walks
// every subscriber's traffic path (access link -> coverage relay ->
// steinerized relay hops -> base station), computes per-hop SNR and
// Shannon capacity under the allocated powers, and reports end-to-end
// bottlenecks. It also injects relay failures and quantifies the coverage
// they cost.
//
// The placement algorithms *construct* deployments that satisfy the
// paper's constraints; this package *verifies* them by independent
// simulation, and gives downstream users the per-link numbers the
// construction never materializes.
package sim

import (
	"fmt"
	"math"
	"sort"

	"sagrelay/internal/core"
	"sagrelay/internal/geom"
	"sagrelay/internal/scenario"
)

// Options configure the evaluation.
type Options struct {
	// Bandwidth normalizes Shannon capacities; 0 means 1 (capacities in
	// bits/s/Hz).
	Bandwidth float64
	// NoiseFloor is the thermal noise N0 used for relay-hop SNRs; 0 means
	// 1e-6 power units (well below any in-range received power).
	NoiseFloor float64
}

func (o Options) withDefaults() Options {
	if o.Bandwidth <= 0 {
		o.Bandwidth = 1
	}
	if o.NoiseFloor <= 0 {
		o.NoiseFloor = 1e-6
	}
	return o
}

// Link is one evaluated hop.
type Link struct {
	// From and To are the hop endpoints.
	From, To geom.Point
	// Distance is the hop length.
	Distance float64
	// TxPower is the transmitter's allocated power.
	TxPower float64
	// RxPower is the received power under the two-ray model.
	RxPower float64
	// SNRdB is the hop SNR in dB (thermal for relay hops; Definition 2
	// interference SIR for access links).
	SNRdB float64
	// Capacity is the Shannon capacity of the hop.
	Capacity float64
}

// SubscriberReport is the end-to-end evaluation for one subscriber.
type SubscriberReport struct {
	// SS is the subscriber index.
	SS int
	// Access is the subscriber's access link (from its coverage relay).
	Access Link
	// RelayHops are the upper-tier hops from the coverage relay to the
	// terminating base station, in order.
	RelayHops []Link
	// BS is the terminating base station index.
	BS int
	// Bottleneck is the minimum capacity along Access + RelayHops.
	Bottleneck float64
	// MeetsSNR reports whether the access link clears the scenario's SNR
	// threshold.
	MeetsSNR bool
	// MeetsRate reports whether the access link's received power meets the
	// subscriber's demand.
	MeetsRate bool
}

// Hops returns the total hop count including the access link.
func (r *SubscriberReport) Hops() int { return 1 + len(r.RelayHops) }

// Report is a whole-deployment evaluation.
type Report struct {
	// Subscribers holds one report per subscriber, in subscriber order.
	Subscribers []SubscriberReport
	// MinBottleneck and MeanBottleneck aggregate end-to-end capacities.
	MinBottleneck, MeanBottleneck float64
	// SatisfiedSNR and SatisfiedRate count subscribers meeting each
	// constraint.
	SatisfiedSNR, SatisfiedRate int
	// MaxHops is the longest path (in hops) to a base station.
	MaxHops int
	// TotalPower is the summed allocated power across both tiers.
	TotalPower float64
}

// AllSatisfied reports whether every subscriber meets both constraints.
func (r *Report) AllSatisfied() bool {
	n := len(r.Subscribers)
	return r.SatisfiedSNR == n && r.SatisfiedRate == n
}

// Evaluate walks every subscriber's path in the solved deployment.
func Evaluate(sc *scenario.Scenario, sol *core.Solution, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if sol == nil || !sol.Feasible {
		return nil, fmt.Errorf("sim: need a feasible solution")
	}
	if err := sol.Coverage.Verify(sc, false); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := sol.Connectivity.Verify(sc, sol.Coverage); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Group connectivity relays per edge, in subdivision order (they are
	// appended in order during steinerization).
	relaysOfEdge := make([][]int, len(sol.Connectivity.Edges))
	for i, cr := range sol.Connectivity.Relays {
		relaysOfEdge[cr.Edge] = append(relaysOfEdge[cr.Edge], i)
	}
	rep := &Report{MinBottleneck: math.Inf(1)}
	for _, p := range sol.CoveragePower.Powers {
		rep.TotalPower += p
	}
	for _, p := range sol.ConnectivityPower.Powers {
		rep.TotalPower += p
	}
	beta := sc.Beta()
	for j := range sc.Subscribers {
		sr, err := evalSubscriber(sc, sol, relaysOfEdge, j, beta, opts)
		if err != nil {
			return nil, err
		}
		rep.Subscribers = append(rep.Subscribers, *sr)
		if sr.Bottleneck < rep.MinBottleneck {
			rep.MinBottleneck = sr.Bottleneck
		}
		rep.MeanBottleneck += sr.Bottleneck
		if sr.MeetsSNR {
			rep.SatisfiedSNR++
		}
		if sr.MeetsRate {
			rep.SatisfiedRate++
		}
		if h := sr.Hops(); h > rep.MaxHops {
			rep.MaxHops = h
		}
	}
	if n := len(rep.Subscribers); n > 0 {
		rep.MeanBottleneck /= float64(n)
	}
	return rep, nil
}

func evalSubscriber(sc *scenario.Scenario, sol *core.Solution, relaysOfEdge [][]int, j int, beta float64, opts Options) (*SubscriberReport, error) {
	ss := sc.Subscribers[j]
	a := sol.Coverage.AssignOf[j]
	relay := sol.Coverage.Relays[a]
	// Access link with Definition 2 interference from the other coverage
	// relays under their allocated powers.
	signal := sc.Model.ReceivedPower(sol.CoveragePower.Powers[a], relay.Pos.Dist(ss.Pos))
	interference := 0.0
	for k, other := range sol.Coverage.Relays {
		if k == a {
			continue
		}
		interference += sc.Model.ReceivedPower(sol.CoveragePower.Powers[k], other.Pos.Dist(ss.Pos))
	}
	sir := math.Inf(1)
	if interference > 0 {
		sir = signal / interference
	}
	sr := &SubscriberReport{
		SS: j,
		Access: Link{
			From:     relay.Pos,
			To:       ss.Pos,
			Distance: relay.Pos.Dist(ss.Pos),
			TxPower:  sol.CoveragePower.Powers[a],
			RxPower:  signal,
			SNRdB:    linearToDB(sir),
			Capacity: shannon(opts.Bandwidth, sir),
		},
		MeetsSNR:  sir >= beta*(1-1e-9),
		MeetsRate: signal >= ss.MinRxPower*(1-1e-9),
	}
	// Walk the connectivity tree from the coverage relay to a base station.
	cur := a
	for steps := 0; ; steps++ {
		if steps > len(sol.Connectivity.Edges)+1 {
			return nil, fmt.Errorf("sim: path from relay %d does not terminate", a)
		}
		e := sol.Connectivity.Edges[cur]
		// Hop chain along this edge: From -> relay1 -> ... -> To.
		points := []geom.Point{e.From}
		for _, ri := range relaysOfEdge[cur] {
			points = append(points, sol.Connectivity.Relays[ri].Pos)
		}
		points = append(points, e.To)
		for h := 0; h+1 < len(points); h++ {
			var tx float64
			if h == 0 {
				// The coverage relay transmits the first hop at its
				// allocated power.
				tx = sol.CoveragePower.Powers[e.Child]
			} else {
				tx = sol.ConnectivityPower.Powers[relaysOfEdge[cur][h-1]]
			}
			d := points[h].Dist(points[h+1])
			rx := sc.Model.ReceivedPower(tx, d)
			snr := rx / opts.NoiseFloor
			sr.RelayHops = append(sr.RelayHops, Link{
				From:     points[h],
				To:       points[h+1],
				Distance: d,
				TxPower:  tx,
				RxPower:  rx,
				SNRdB:    linearToDB(snr),
				Capacity: shannon(opts.Bandwidth, snr),
			})
		}
		if e.ParentBS >= 0 {
			sr.BS = e.ParentBS
			break
		}
		cur = e.ParentCoverage
	}
	sr.Bottleneck = sr.Access.Capacity
	for _, h := range sr.RelayHops {
		if h.Capacity < sr.Bottleneck {
			sr.Bottleneck = h.Capacity
		}
	}
	return sr, nil
}

func shannon(b, snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	return b * math.Log2(1+snr)
}

func linearToDB(r float64) float64 {
	if r <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(r)
}

// sortedKeys is a small helper for deterministic iteration in summaries.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
