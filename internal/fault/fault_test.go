package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// arm installs a plan for the test and disarms it at cleanup, so no fault
// state leaks into other tests in the package.
func arm(t *testing.T, spec string, seed int64) *Plan {
	t.Helper()
	p, err := Parse(spec, seed)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Enable(p)
	t.Cleanup(Disable)
	return p
}

func TestDisabledCheckIsNil(t *testing.T) {
	Disable()
	if err := Check("any.site"); err != nil {
		t.Fatalf("Check with no plan armed = %v, want nil", err)
	}
	if Enabled() {
		t.Fatal("Enabled() = true with no plan armed")
	}
}

func TestErrorRuleFiresEveryHit(t *testing.T) {
	p := arm(t, "a.site=error", 1)
	for i := 0; i < 3; i++ {
		err := Check("a.site")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if got := p.Fired("a.site"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
	if err := Check("other.site"); err != nil {
		t.Fatalf("unrelated site: err = %v, want nil", err)
	}
}

func TestCountTriggerFiresOnNthHitOnly(t *testing.T) {
	arm(t, "a.site=error:n=3", 1)
	for i := 1; i <= 5; i++ {
		err := Check("a.site")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
	}
}

func TestCancelRuleWrapsContextCanceled(t *testing.T) {
	arm(t, "a.site=cancel", 1)
	err := Check("a.site")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapping ErrInjected", err)
	}
}

func TestPanicRulePanics(t *testing.T) {
	arm(t, "a.site=panic:n=1", 1)
	var pe *PanicError
	func() {
		defer func() {
			if v := recover(); v != nil {
				pe = NewPanicError("test.boundary", v)
			}
		}()
		_ = Check("a.site")
	}()
	if pe == nil {
		t.Fatal("panic rule did not panic")
	}
	if pe.Site != "test.boundary" || !strings.Contains(pe.Error(), "injected panic at a.site") {
		t.Fatalf("PanicError = %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError has no stack")
	}
}

func TestDelayRuleSleeps(t *testing.T) {
	arm(t, "a.site=delay:d=30ms:n=1", 1)
	start := time.Now()
	if err := Check("a.site"); err != nil {
		t.Fatalf("delay rule returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= ~30ms", d)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	// Same spec + seed + hit sequence -> identical fire pattern.
	pattern := func(seed int64) []bool {
		p, err := Parse("a.site=error:p=0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		Enable(p)
		defer Disable()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check("a.site") != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire pattern diverged at hit %d with equal seeds", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fire pattern identical across different seeds (suspicious)")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nosite",
		"a.site=frobnicate",
		"a.site=error:p=2",
		"a.site=error:n=0",
		"a.site=delay:d=-1s",
		"a.site=error:zzz",
		"",
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestEnableSpecEmptyDisables(t *testing.T) {
	arm(t, "a.site=error", 1)
	if err := EnableSpec("", 0); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("EnableSpec(\"\") left injection enabled")
	}
}

func TestRegisterAndSites(t *testing.T) {
	name := Register("fault_test.site")
	found := false
	for _, s := range Sites() {
		if s == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Sites() = %v does not contain %q", Sites(), name)
	}
}
