// Package fault is a deterministic, seedable fault-injection registry for
// chaos-testing the solve stack. Packages declare named injection sites
// (Register) and poll them on their hot paths (Check); a test or operator
// arms a Plan — parsed from a compact spec string — that makes chosen sites
// return errors, panic, sleep, or report cancellation, with probability or
// hit-count triggers.
//
// Production cost is designed to be negligible: with no plan armed, Check
// is a single atomic pointer load and an immediate return. Arming happens
// only through explicit runtime configuration (the sagserved -fault flag,
// the SAGFAULT environment variable, or a test calling Enable), never by
// default.
//
// Determinism: every rule owns a rand source seeded from the plan seed and
// the site name, so a single-threaded run with the same spec, seed and hit
// sequence fires identically. Under concurrency the per-site hit order
// depends on scheduling, as any injected fault would in production.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what a rule does when it fires.
type Kind int

// Rule kinds. (Enums start at 1 so the zero value is invalid.)
const (
	// KindError makes Check return an error wrapping ErrInjected.
	KindError Kind = iota + 1
	// KindPanic makes Check panic; isolation boundaries (par.Pool workers,
	// par.ForEachContext tasks, serve job execution) recover it into a
	// *PanicError.
	KindPanic
	// KindDelay makes Check sleep for the rule's duration, then continue.
	KindDelay
	// KindCancel makes Check return an error wrapping context.Canceled, so
	// the call site's cancellation handling runs without any real context
	// being cancelled.
	KindCancel
)

// String renders the kind as it appears in specs.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the base error of every injected failure; test assertions
// use errors.Is against it to tell injected faults from organic ones.
var ErrInjected = errors.New("fault: injected error")

// PanicError describes a panic recovered at an isolation boundary: the
// boundary's site name, the recovered value, and the stack at recovery.
// Boundaries construct it with NewPanicError, which also feeds the
// process-wide RecoveredPanics counter behind /metrics.
type PanicError struct {
	// Site names the isolation boundary that recovered the panic (not
	// necessarily an injection site — organic panics are captured too).
	Site string
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the site and panic value; the stack is available on the
// struct for logs.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Site, e.Value)
}

// recovered counts panics converted into *PanicError process-wide.
var recovered atomic.Int64

// RecoveredPanics returns the number of panics recovered at isolation
// boundaries since process start.
func RecoveredPanics() int64 { return recovered.Load() }

// NewPanicError captures the current stack into a *PanicError and
// increments the process-wide recovered-panic counter. Call it directly
// from the deferred recover handler so the stack still shows the panic
// origin.
func NewPanicError(site string, v any) *PanicError {
	recovered.Add(1)
	return &PanicError{Site: site, Value: v, Stack: debug.Stack()}
}

// Site registry — the set of names packages have registered, so chaos
// harnesses can enumerate every injection point without hard-coding them.
var (
	sitesMu sync.Mutex
	sites   = map[string]bool{}
)

// Register records a site name and returns it, for use in package-level
// variable declarations:
//
//	var siteNode = fault.Register("milp.node")
//
// Registering the same name twice is harmless.
func Register(name string) string {
	sitesMu.Lock()
	sites[name] = true
	sitesMu.Unlock()
	return name
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// rule is one armed trigger at one site.
type rule struct {
	site  string
	kind  Kind
	prob  float64       // per-hit fire probability; used when after == 0
	after int64         // fire exactly on the Nth hit (one-shot); 0 = probabilistic
	delay time.Duration // KindDelay sleep

	hits  atomic.Int64
	fired atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

func (r *rule) shouldFire() bool {
	h := r.hits.Add(1)
	if r.after > 0 {
		return h == r.after
	}
	if r.prob >= 1 {
		return true
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return f < r.prob
}

// Plan is a parsed, armed set of rules. Plans are immutable after Parse;
// arm one with Enable.
type Plan struct {
	rules map[string][]*rule
	seed  int64
	spec  string
}

// active is the armed plan; nil means injection is off and Check is one
// atomic load.
var active atomic.Pointer[Plan]

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// Enable arms the plan (replacing any previous one). A nil plan disables
// injection.
func Enable(p *Plan) { active.Store(p) }

// Disable disarms injection.
func Disable() { active.Store(nil) }

// EnableSpec parses spec with Parse and arms the result. An empty spec
// disables injection.
func EnableSpec(spec string, seed int64) error {
	if strings.TrimSpace(spec) == "" {
		Disable()
		return nil
	}
	p, err := Parse(spec, seed)
	if err != nil {
		return err
	}
	Enable(p)
	return nil
}

// Parse builds a Plan from a comma-separated clause list. Each clause is
//
//	site=kind[:p=<prob>][:n=<hit>][:d=<duration>]
//
// kind is error, panic, delay or cancel. p is the per-hit fire probability
// (default 1 — fire on every hit); n fires exactly on the Nth hit instead
// (one-shot, overrides p); d is the sleep for delay rules (default 1ms).
// Examples:
//
//	milp.node=error:p=0.01
//	serve.job=panic:n=3
//	lp.pivot=delay:p=0.1:d=2ms,par.pool.task=cancel:n=1
func Parse(spec string, seed int64) (*Plan, error) {
	p := &Plan{rules: map[string][]*rule{}, seed: seed, spec: spec}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, ok := strings.Cut(clause, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("fault: clause %q is not site=kind[...]", clause)
		}
		parts := strings.Split(rest, ":")
		r := &rule{site: site, prob: 1, delay: time.Millisecond}
		switch parts[0] {
		case "error":
			r.kind = KindError
		case "panic":
			r.kind = KindPanic
		case "delay":
			r.kind = KindDelay
		case "cancel":
			r.kind = KindCancel
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown kind %q", clause, parts[0])
		}
		for _, opt := range parts[1:] {
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("fault: clause %q: option %q is not key=value", clause, opt)
			}
			switch key {
			case "p":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("fault: clause %q: probability %q not in [0,1]", clause, val)
				}
				r.prob = f
			case "n":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fault: clause %q: hit count %q not a positive integer", clause, val)
				}
				r.after = n
			case "d":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: clause %q: bad duration %q", clause, val)
				}
				r.delay = d
			default:
				return nil, fmt.Errorf("fault: clause %q: unknown option %q", clause, key)
			}
		}
		// Seed each rule from the plan seed and the site name so rule
		// streams are independent and reproducible.
		h := fnv.New64a()
		h.Write([]byte(site))
		r.rng = rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
		p.rules[site] = append(p.rules[site], r)
	}
	if len(p.rules) == 0 {
		return nil, errors.New("fault: empty spec")
	}
	return p, nil
}

// Fired returns how many times rules at site have fired under this plan.
func (p *Plan) Fired(site string) int64 {
	var n int64
	for _, r := range p.rules[site] {
		n += r.fired.Load()
	}
	return n
}

// FiredTotal returns the total fires across all sites.
func (p *Plan) FiredTotal() int64 {
	var n int64
	for site := range p.rules {
		n += p.Fired(site)
	}
	return n
}

// String renders the plan's original spec.
func (p *Plan) String() string { return p.spec }

// Fired returns how many times rules at site have fired under the armed
// plan; 0 when injection is off.
func Fired(site string) int64 {
	if p := active.Load(); p != nil {
		return p.Fired(site)
	}
	return 0
}

// FiredTotal returns the armed plan's total fires across all sites; 0 when
// injection is off.
func FiredTotal() int64 {
	if p := active.Load(); p != nil {
		return p.FiredTotal()
	}
	return 0
}

// Check consults the armed plan for site. With no plan armed it is a
// single atomic load. When a rule fires: delay rules sleep and Check
// continues; error rules return an error wrapping ErrInjected; cancel
// rules return an error wrapping both ErrInjected and context.Canceled;
// panic rules panic (isolation boundaries convert the panic into a
// *PanicError).
func Check(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.check(site)
}

func (p *Plan) check(site string) error {
	for _, r := range p.rules[site] {
		if !r.shouldFire() {
			continue
		}
		r.fired.Add(1)
		switch r.kind {
		case KindDelay:
			time.Sleep(r.delay)
		case KindError:
			return fmt.Errorf("%w at %s", ErrInjected, site)
		case KindCancel:
			return fmt.Errorf("%w at %s: %w", ErrInjected, site, context.Canceled)
		case KindPanic:
			panic(fmt.Sprintf("fault: injected panic at %s", site))
		}
	}
	return nil
}
