// Paper figures in the terminal: regenerate two of the paper's cheaper
// artifacts through the public experiment API and render them as ASCII
// tables and charts — the same entry point cmd/sagbench scripts, shown as
// a library call.
package main

import (
	"context"
	"fmt"
	"os"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("available artifacts:", sagrelay.ExperimentIDs())
	fmt.Println()

	// Table II: MUST vs MBMC as base stations are added.
	table2, err := sagrelay.RunExperiment(context.Background(), "table2", sagrelay.ExperimentConfig{Runs: 1})
	if err != nil {
		return err
	}
	fmt.Println(table2.ASCII())

	// Fig. 4(d): UCPO vs max-power baseline, plotted.
	fig4d, err := sagrelay.RunExperiment(context.Background(), "fig4d", sagrelay.ExperimentConfig{Runs: 1})
	if err != nil {
		return err
	}
	fmt.Println(fig4d.ASCII())
	fmt.Println(fig4d.Chart(60, 16))

	fmt.Println("CSV export of fig4d (first lines):")
	csv := fig4d.CSV()
	for i, line := 0, 0; i < len(csv) && line < 4; i++ {
		fmt.Print(string(csv[i]))
		if csv[i] == '\n' {
			line++
		}
	}
	return nil
}
