// Power sweep: how the SNR threshold shapes the power bill. On a fixed
// 30-subscriber deployment, the example sweeps the SNR threshold from
// -25 dB to -10 dB and reports, for each value, the relay count and the
// lower-tier power under the max-power baseline, PRO (Alg. 6) and the exact
// LPQC optimum — the trade-off a network operator would consult before
// committing to a QoS target.
package main

import (
	"context"
	"fmt"
	"os"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powersweep:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%8s %8s %10s %10s %10s %10s\n",
		"SNR(dB)", "relays", "baseline", "PRO", "optimal", "PRO gap")
	for snr := -25.0; snr <= -10.0+1e-9; snr += 2.5 {
		sc, err := sagrelay.Generate(sagrelay.GenConfig{
			FieldSide: 500,
			NumSS:     30,
			NumBS:     4,
			SNRdB:     snr,
			Seed:      7, // same geometry each step: only the threshold moves
		})
		if err != nil {
			return err
		}
		cover, err := sagrelay.SAMC(context.Background(), sc, sagrelay.SAMCOptions{})
		if err != nil {
			return err
		}
		if !cover.Feasible {
			fmt.Printf("%8.1f %8s %10s %10s %10s %10s\n", snr, "-", "-", "-", "-", "-")
			continue
		}
		pro, err := sagrelay.PRO(context.Background(), sc, cover)
		if err != nil {
			return err
		}
		opt, err := sagrelay.OptimalCoveragePower(context.Background(), sc, cover)
		if err != nil {
			return err
		}
		baseline := sc.PMax * float64(cover.NumRelays())
		gap := 0.0
		if opt.Total > 0 {
			gap = (pro.Total - opt.Total) / opt.Total * 100
		}
		fmt.Printf("%8.1f %8d %10.1f %10.2f %10.2f %9.1f%%\n",
			snr, cover.NumRelays(), baseline, pro.Total, opt.Total, gap)
	}
	fmt.Println("\nPRO tracks the LP optimum closely while the max-power baseline")
	fmt.Println("pays full price per relay regardless of the threshold.")
	return nil
}
