// Resilience audit: after solving a deployment with SAG, evaluate it at the
// link level (per-hop SNR and Shannon capacity, end-to-end bottlenecks) and
// then stress it with single-relay failures — the due-diligence pass an
// operator runs before committing a relay plan.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	sc, err := sagrelay.Generate(sagrelay.GenConfig{
		FieldSide: 500, NumSS: 25, NumBS: 3, Seed: 99,
	})
	if err != nil {
		return err
	}
	sol, err := sagrelay.SAG(context.Background(), sc, sagrelay.Config{})
	if err != nil {
		return err
	}
	if !sol.Feasible {
		return fmt.Errorf("deployment infeasible")
	}

	// Link-level evaluation of the as-built network.
	rep, err := sagrelay.Evaluate(context.Background(), sc, sol, sagrelay.SimOptions{Bandwidth: 10})
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d coverage + %d connectivity relays, %.1f power\n",
		sol.Coverage.NumRelays(), sol.Connectivity.NumRelays(), sol.PTotal)
	fmt.Printf("link audit: %d/%d meet SNR, %d/%d meet rate, max path %d hops\n",
		rep.SatisfiedSNR, len(rep.Subscribers),
		rep.SatisfiedRate, len(rep.Subscribers), rep.MaxHops)
	fmt.Printf("end-to-end bottleneck capacity: min %.2f, mean %.2f (b/s/Hz x10)\n\n",
		rep.MinBottleneck, rep.MeanBottleneck)

	// The five weakest subscribers.
	idx := make([]int, len(rep.Subscribers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return rep.Subscribers[idx[a]].Bottleneck < rep.Subscribers[idx[b]].Bottleneck
	})
	fmt.Println("five tightest paths:")
	for _, i := range idx[:5] {
		sr := rep.Subscribers[i]
		fmt.Printf("  SS %-2d: %d hops to BS %d, bottleneck %.2f, access SNR %.1f dB\n",
			sr.SS, sr.Hops(), sr.BS, sr.Bottleneck, sr.Access.SNRdB)
	}

	// Single-failure stress: every relay, both tiers.
	worst, err := sagrelay.WorstSingleFailure(context.Background(), sc, sol)
	if err != nil {
		return err
	}
	fmt.Printf("\nworst single failure: %s relay %d -> %d/%d subscribers lost (%.0f%%)\n",
		worst.Failure.Kind, worst.Failure.Index,
		len(worst.LostSubscribers), sc.NumSS(), 100*worst.LostFraction)

	// Distribution of failure impact across all coverage relays.
	hist := map[int]int{}
	for i := range sol.Coverage.Relays {
		r, err := sagrelay.InjectFailure(context.Background(), sc, sol, sagrelay.Failure{
			Kind: sagrelay.FailCoverage, Index: i,
		})
		if err != nil {
			return err
		}
		hist[len(r.LostSubscribers)]++
	}
	fmt.Println("\ncoverage-relay failure impact (lost subscribers -> #relays):")
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  %2d lost: %d relays\n", k, hist[k])
	}
	return nil
}
