// Traffic planning: specify demand the way an operator would — data rates
// per site class, not abstract distances — and let the library run the
// paper's capacity-to-distance transformation (Section II-A) before
// solving. Uses a clustered town-center workload, where Zone Partition
// actually decomposes the field, and compares uniform vs clustered
// deployments.
package main

import (
	"context"
	"fmt"
	"os"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trafficplan:", err)
		os.Exit(1)
	}
}

func run() error {
	// Demand classes in rate terms (rate units per bandwidth unit): the
	// anchor store streams inventory video, kiosks mostly idle.
	classes := []sagrelay.TrafficClass{
		{Name: "anchor-store", Rate: 8.0, Bandwidth: 1, Weight: 1},
		{Name: "restaurant", Rate: 6.5, Bandwidth: 1, Weight: 2},
		{Name: "gas-station", Rate: 5.0, Bandwidth: 1, Weight: 3},
	}
	sc, err := sagrelay.GenerateTraffic(sagrelay.TrafficConfig{
		FieldSide: 500, NumSS: 25, NumBS: 3, Seed: 21,
		Classes: classes,
	})
	if err != nil {
		return err
	}
	fmt.Println("rate-derived distance requirements (Section II-A):")
	hist := map[int]int{}
	for _, s := range sc.Subscribers {
		hist[int(s.DistReq)]++
	}
	for d := 0; d < 300; d++ {
		if hist[d] > 0 {
			fmt.Printf("  ~%3d units: %d sites\n", d, hist[d])
		}
	}

	sol, err := sagrelay.SAG(context.Background(), sc, sagrelay.Config{})
	if err != nil {
		return err
	}
	if !sol.Feasible {
		return fmt.Errorf("rate-based deployment infeasible")
	}
	fmt.Printf("\nuniform field:   %2d coverage + %2d connectivity relays, power %.1f\n",
		sol.Coverage.NumRelays(), sol.Connectivity.NumRelays(), sol.PTotal)

	// The same subscriber count clustered into three town centres on a
	// wider field: the clusters fall outside each other's ignorable-noise
	// radius and Zone Partition decomposes the problem.
	clustered, err := sagrelay.GenerateClustered(sagrelay.ClusterConfig{
		FieldSide: 900, NumClusters: 3, NumSS: 25, NumBS: 3, Seed: 21, Spread: 30,
	})
	if err != nil {
		return err
	}
	zones, err := sagrelay.ZonePartition(clustered)
	if err != nil {
		return err
	}
	csol, err := sagrelay.SAG(context.Background(), clustered, sagrelay.Config{})
	if err != nil {
		return err
	}
	if !csol.Feasible {
		return fmt.Errorf("clustered deployment infeasible")
	}
	fmt.Printf("clustered field: %2d coverage + %2d connectivity relays, power %.1f (%d zones)\n",
		csol.Coverage.NumRelays(), csol.Connectivity.NumRelays(), csol.PTotal, len(zones))

	fmt.Println("\nclustering concentrates demand — fewer coverage relays per site —")
	if len(zones) > 1 {
		fmt.Println("and Zone Partition isolated the clusters' interference domains.")
	} else {
		fmt.Println("though these clusters still share one interference zone.")
	}
	return nil
}
