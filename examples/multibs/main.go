// Multi-BS planning: Table II of the paper as a planning exercise. For a
// growing number of macro base stations, the example compares the upper
// tier built by MUST (every coverage relay forced to one fixed base
// station, the scheme of [1]) against MBMC (nearest base station), showing
// how much backhaul hardware each added macro site saves.
package main

import (
	"context"
	"fmt"
	"os"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multibs:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%4s %10s %10s %10s %10s %8s\n",
		"BS", "MUST BS1", "MUST BS2", "MUST BS3", "MUST BS4", "MBMC")
	for nbs := 1; nbs <= 4; nbs++ {
		sc, err := sagrelay.Generate(sagrelay.GenConfig{
			FieldSide: 500,
			NumSS:     30,
			NumBS:     nbs,
			Seed:      30, // NSS=30, SNR=-15dB as in Table II
		})
		if err != nil {
			return err
		}
		cover, err := sagrelay.SAMC(context.Background(), sc, sagrelay.SAMCOptions{})
		if err != nil {
			return err
		}
		if !cover.Feasible {
			return fmt.Errorf("coverage infeasible with %d base stations", nbs)
		}
		cells := make([]string, 4)
		for b := 0; b < 4; b++ {
			if b >= nbs {
				cells[b] = "N/A"
				continue
			}
			must, err := sagrelay.MUST(context.Background(), sc, cover, b)
			if err != nil {
				return err
			}
			cells[b] = fmt.Sprintf("%d", must.NumRelays())
		}
		mbmc, err := sagrelay.MBMC(context.Background(), sc, cover)
		if err != nil {
			return err
		}
		fmt.Printf("%4d %10s %10s %10s %10s %8d\n",
			nbs, cells[0], cells[1], cells[2], cells[3], mbmc.NumRelays())
	}
	fmt.Println("\nMBMC never places more connectivity relays than the best")
	fmt.Println("single-BS MUST, and the advantage grows with each macro site.")
	return nil
}
