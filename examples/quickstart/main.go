// Quickstart: generate a random deployment scenario, run the full SAG
// pipeline (SAMC coverage + PRO + MBMC connectivity + UCPO), and print the
// resulting deployment and its power savings over the max-power baseline.
package main

import (
	"context"
	"fmt"
	"os"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 500x500 field with 30 subscriber stations and 4 base stations,
	// the paper's standard evaluation workload (Section IV-A).
	sc, err := sagrelay.Generate(sagrelay.GenConfig{
		FieldSide: 500,
		NumSS:     30,
		NumBS:     4,
		Seed:      2013, // deterministic: same seed, same scenario
	})
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %d subscribers, %d base stations, SNR threshold %.1f dB\n",
		sc.NumSS(), len(sc.BaseStations), sc.SNRThresholdDB)

	sol, err := sagrelay.SAG(context.Background(), sc, sagrelay.Config{})
	if err != nil {
		return err
	}
	if !sol.Feasible {
		return fmt.Errorf("no feasible deployment at this SNR threshold")
	}

	fmt.Printf("\nSAG deployment (%v):\n", sol.Elapsed.Round(1000))
	fmt.Printf("  coverage relays:     %d (power %.1f)\n", sol.Coverage.NumRelays(), sol.PL)
	fmt.Printf("  connectivity relays: %d (power %.1f)\n", sol.Connectivity.NumRelays(), sol.PH)
	fmt.Printf("  total power:         %.1f\n", sol.PTotal)

	maxPower := sc.PMax * float64(sol.TotalRelays())
	fmt.Printf("  vs max-power:        %.1f  (%.0f%% saved)\n",
		maxPower, 100*(1-sol.PTotal/maxPower))

	// Each subscriber's serving relay:
	fmt.Println("\nfirst five access links:")
	for j := 0; j < 5 && j < sc.NumSS(); j++ {
		r := sol.Coverage.AssignOf[j]
		relay := sol.Coverage.Relays[r]
		fmt.Printf("  SS %-2d at %v -> relay %d at %v (%.1f away, power %.3f)\n",
			j, sc.Subscribers[j].Pos, r, relay.Pos,
			sc.Subscribers[j].Pos.Dist(relay.Pos), sol.CoveragePower.Powers[r])
	}
	return nil
}
