// Retail park: a hand-built scenario matching the paper's motivation — the
// subscriber stations are fixed high-demand sites ("Wal-Mart, McDonald's,
// and gas stations") clustered along two retail strips, with macro base
// stations at the edge of town. The example solves it with SAG and with the
// SAMC+DARP baseline, prints the comparison, and renders both topologies as
// SVG files.
package main

import (
	"context"
	"fmt"
	"os"

	"sagrelay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "retailpark:", err)
		os.Exit(1)
	}
}

// site places one subscriber with a distance requirement derived from its
// demand class: anchor stores request more capacity (shorter feasible
// distance) than gas stations.
func site(sc *sagrelay.Scenario, id int, x, y, distReq float64) sagrelay.Subscriber {
	return sagrelay.Subscriber{
		ID:         id,
		Pos:        sagrelay.Pt(x, y),
		DistReq:    distReq,
		MinRxPower: sc.DeriveMinRxPower(distReq),
	}
}

func buildScenario() (*sagrelay.Scenario, error) {
	sc := &sagrelay.Scenario{
		Field:          sagrelay.SquareField(600),
		Model:          sagrelay.DefaultRadioModel(),
		PMax:           50,
		SNRThresholdDB: -15,
		NMax:           1.5e-5,
		BaseStations: []sagrelay.BaseStation{
			{ID: 0, Pos: sagrelay.Pt(-270, -270)}, // edge-of-town macro sites
			{ID: 1, Pos: sagrelay.Pt(270, 250)},
		},
	}
	// North strip: anchor store + satellites.
	coords := []struct {
		x, y, d float64
	}{
		{-180, 120, 30}, // big-box anchor (high demand, short range)
		{-140, 135, 34},
		{-100, 120, 36},
		{-60, 140, 38},
		{-20, 125, 36},
		// South strip along the highway.
		{-40, -150, 32},
		{0, -140, 35},
		{40, -155, 38},
		{80, -140, 34},
		{120, -150, 36},
		{160, -135, 40},
		// Isolated gas stations between the strips.
		{220, 20, 40},
		{-240, -40, 40},
	}
	for i, c := range coords {
		sc.Subscribers = append(sc.Subscribers, site(sc, i, c.x, c.y, c.d))
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func run() error {
	sc, err := buildScenario()
	if err != nil {
		return err
	}
	zones, err := sagrelay.ZonePartition(sc)
	if err != nil {
		return err
	}
	fmt.Printf("retail park: %d sites in %d interference zones, %d base stations\n",
		sc.NumSS(), len(zones), len(sc.BaseStations))

	sag, err := sagrelay.SAG(context.Background(), sc, sagrelay.Config{})
	if err != nil {
		return err
	}
	darp, err := sagrelay.DARP(context.Background(), sc, sagrelay.CoverSAMC, sagrelay.Config{})
	if err != nil {
		return err
	}
	if !sag.Feasible || !darp.Feasible {
		return fmt.Errorf("deployment infeasible (SAG=%v, DARP=%v)", sag.Feasible, darp.Feasible)
	}

	fmt.Printf("\n%-12s %10s %12s %12s\n", "pipeline", "relays", "total power", "vs DARP")
	for _, sol := range []*sagrelay.Solution{sag, darp} {
		fmt.Printf("%-12s %10d %12.1f %11.0f%%\n",
			sol.Method, sol.TotalRelays(), sol.PTotal, 100*sol.PTotal/darp.PTotal)
	}

	for name, sol := range map[string]*sagrelay.Solution{
		"retailpark_sag.svg":  sag,
		"retailpark_darp.svg": darp,
	} {
		style := sagrelay.VizStyle{ShowEdges: true, ShowCircles: true, Title: sol.Method}
		if err := sagrelay.RenderSVGFile(sc, sol, style, name); err != nil {
			return err
		}
		fmt.Println("wrote", name)
	}
	return nil
}
