#!/bin/sh
# ci.sh — the repository's full verification gate.
#
#   ./ci.sh          # vet + build + race-enabled tests (includes the
#                    # worker-count determinism regression)
#   ./ci.sh -full    # additionally run the full-size Fig3a determinism
#                    # check (minutes of branch-and-bound)
#
# The -race run covers every package, so the parallel experiment harness
# and the per-zone solvers are exercised under the race detector on every
# gate. Tests are written to pass with -short except the full-size
# determinism check, which -full enables by dropping -short.
set -eu

cd "$(dirname "$0")"

MODE=short
if [ "${1:-}" = "-full" ]; then
	MODE=full
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./... ($MODE)"
if [ "$MODE" = full ]; then
	go test -race -timeout 60m ./...
else
	go test -race -short -timeout 30m ./...
fi

echo "ci.sh: all checks passed"
