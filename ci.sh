#!/bin/sh
# ci.sh — the repository's full verification gate.
#
#   ./ci.sh          # vet + build + race-enabled tests (includes the
#                    # worker-count determinism regression)
#   ./ci.sh -full    # additionally run the full-size Fig3a determinism
#                    # check (minutes of branch-and-bound)
#   ./ci.sh bench    # run the solver benchmark suite and write BENCH.json
#                    # (machine-readable ns/op, allocs/op, nodes, pivots)
#
# The -race run covers every package, so the parallel experiment harness
# and the per-zone solvers are exercised under the race detector on every
# gate. Tests are written to pass with -short except the full-size
# determinism check, which -full enables by dropping -short.
set -eu

cd "$(dirname "$0")"

if [ "${1:-}" = "bench" ]; then
	exec go run ./cmd/sagbench -bench-json "${2:-BENCH.json}"
fi

MODE=short
if [ "${1:-}" = "-full" ]; then
	MODE=full
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./... ($MODE)"
if [ "$MODE" = full ]; then
	go test -race -timeout 60m ./...
else
	go test -race -short -timeout 30m ./...
fi

# The solve service gets an extra race-enabled pass without -short (its
# cancellation and shutdown tests are all quick) plus the sagserved smoke
# self-test: ephemeral port, solve a tiny scenario twice, assert the second
# answer is a byte-identical cache hit, shut down cleanly.
echo "== go test -race ./internal/serve/"
go test -race -count=1 -timeout 10m ./internal/serve/

echo "== sagserved -smoke"
go run ./cmd/sagserved -smoke

# Resilience gates. The chaos suite (build-tagged so it never runs by
# accident) arms every registered fault-injection site with every failure
# kind and asserts jobs stay terminal and the server stays alive; the
# recovery smoke kills a journaled child server with SIGKILL mid-solve and
# asserts the journal replays the job to a byte-identical served result.
echo "== go test -race -tags faultinject -run Chaos ./internal/serve/"
go test -race -tags faultinject -run Chaos -count=1 -timeout 20m ./internal/serve/

echo "== sagserved -smoke-recovery"
go run ./cmd/sagserved -smoke-recovery

# Overload gate: a seeded admission-fault storm must shed the same fixed
# request indices on two fresh servers (determinism), shed jobs must cost
# zero solver work with accepted answers byte-identical to an unloaded
# server's, /healthz must stay under 100ms through a queue-saturating delay
# storm, and a journaled server must quarantine a bit-rotted mid-file WAL
# record on restart while restoring every intact job byte-identically.
echo "== sagserved -smoke-overload"
go run ./cmd/sagserved -smoke-overload

# Batch gate: stream a seeded grid batch over NDJSON, then re-request every
# cell through /v1/solve — each answer must be byte-identical to its streamed
# line and cost zero further solver work (all cache hits), with the batch
# counters and the sagmetrics/6 schema agreeing.
echo "== sagserved -smoke-batch"
go run ./cmd/sagserved -smoke-batch

# Introspection gate: submit a live multi-zone solve, tail its NDJSON
# progress stream (at least one mid-solve snapshot with a per-zone gap must
# precede the terminal one), fetch the finished job's flight record with its
# span tree and convergence curve, and match one captured JSON log line to
# the job by its job_id correlation field. The disarmed progress hook is
# additionally pinned at zero allocations by the milp benchmark suite.
echo "== sagserved -smoke-progress"
go run ./cmd/sagserved -smoke-progress

# Performance gates for the branch-and-bound hot path. The pivot-regression
# gate solves the pinned ILPQC benchmark instance and fails if the total
# simplex pivot count regresses past the recorded budget (half the
# pre-warm-start baseline, so the >= 2x reduction is enforced, not just
# recorded). The -race warm-start pass hammers the per-Solver basis
# buffers from concurrent goroutines to prove warm-start state never leaks
# across solvers.
echo "== go test -run TestPivotRegressionGate ./internal/milp/"
go test -count=1 -run TestPivotRegressionGate ./internal/milp/

echo "== go test -race -run 'Warm' ./internal/lp/ ./internal/milp/"
go test -race -count=1 -run 'Warm' -timeout 10m ./internal/lp/ ./internal/milp/

# Incremental-equivalence gate: a mutation storm of every delta kind (add,
# remove, move and traffic-change subscribers; add and remove base stations)
# where each incremental solve through warmed zone-level stores must be
# byte-identical to a cold solve of the same mutated scenario, for both the
# heuristic and exact pipelines — plus the counter proof that a single
# subscriber move re-solves no more zones than the planner marked dirty.
echo "== go test -race -run 'TestIncr' ./internal/incr/"
go test -race -count=1 -run 'TestIncr' -timeout 20m ./internal/incr/

# Observability gate: a traced sagcli solve must emit a span tree covering
# every pipeline stage. (The Prometheus exposition grammar is gated inside
# sagserved -smoke above.)
echo "== sagcli -trace-out"
TRACEDIR=$(mktemp -d)
trap 'rm -rf "$TRACEDIR"' EXIT
go run ./cmd/sagcli -gen -users 12 -field 400 -bs 2 -save "$TRACEDIR/sc.json" >/dev/null
go run ./cmd/sagcli -scenario "$TRACEDIR/sc.json" -trace-out "$TRACEDIR/trace.json" >/dev/null
for stage in sagcli solve zone_partition zone coverage coverage_power connectivity connectivity_power; do
	if ! grep -q "\"name\": \"$stage\"" "$TRACEDIR/trace.json"; then
		echo "ci.sh: trace.json lacks a \"$stage\" span" >&2
		exit 1
	fi
done
if grep -q '"dur_ns": 0' "$TRACEDIR/trace.json"; then
	echo "ci.sh: trace.json contains a zero-duration span" >&2
	exit 1
fi

echo "ci.sh: all checks passed"
