// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact; see DESIGN.md's experiment index), plus the
// ablation studies DESIGN.md calls out and micro-benchmarks of the hot
// substrates. Figure benches run one full artifact generation per
// iteration with a single seeded repetition (experiment.QuickConfig); use
// cmd/sagbench -runs 10 for paper-strength averaging.
package sagrelay

import (
	"context"
	"fmt"
	"math"
	"testing"

	"sagrelay/internal/experiment"
	"sagrelay/internal/geom"
	"sagrelay/internal/hitting"
	"sagrelay/internal/lower"
	"sagrelay/internal/lp"
	"sagrelay/internal/milp"
	"sagrelay/internal/scenario"
	"sagrelay/internal/upper"
)

// benchArtifact runs one full artifact regeneration per iteration and
// reports the mean of the last series column as a sanity metric.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Run(id, experiment.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
		row := tbl.Rows[len(tbl.Rows)-1]
		last = row.Values[len(row.Values)-1]
	}
	if !math.IsNaN(last) {
		b.ReportMetric(last, "last-cell")
	}
}

func BenchmarkFig3a(b *testing.B)  { benchArtifact(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchArtifact(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchArtifact(b, "fig3c") }
func BenchmarkFig3d(b *testing.B)  { benchArtifact(b, "fig3d") }
func BenchmarkFig3e(b *testing.B)  { benchArtifact(b, "fig3e") }
func BenchmarkFig4a(b *testing.B)  { benchArtifact(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)  { benchArtifact(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)  { benchArtifact(b, "fig4c") }
func BenchmarkFig4d(b *testing.B)  { benchArtifact(b, "fig4d") }
func BenchmarkFig5a(b *testing.B)  { benchArtifact(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { benchArtifact(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)  { benchArtifact(b, "fig5c") }
func BenchmarkFig5d(b *testing.B)  { benchArtifact(b, "fig5d") }
func BenchmarkFig6(b *testing.B)   { benchArtifact(b, "fig6") }
func BenchmarkFig7a(b *testing.B)  { benchArtifact(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchArtifact(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchArtifact(b, "fig7c") }
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFig3aWorkers regenerates fig3a at fixed worker counts — the
// speedup of workers-4 over workers-1 is the parallel solve engine's
// headline number (on a multi-core host; on one CPU the two coincide).
func BenchmarkFig3aWorkers(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiment.QuickConfig()
				cfg.Workers = w
				cfg.ILP.Workers = w
				if _, err := experiment.Run("fig3a", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchScenario builds the standard 30-user 500x500 workload.
func benchScenario(b *testing.B, seed int64) *scenario.Scenario {
	b.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 500, NumSS: 30, NumBS: 4, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// Ablation: hitting-set local search on/off. Reports the mean SAMC relay
// count over a fixed instance set; greedy-only should need at least as
// many relays.
func BenchmarkAblationLocalSearch(b *testing.B) {
	run := func(b *testing.B, opts hitting.Options) {
		relays := 0.0
		for i := 0; i < b.N; i++ {
			sc := benchScenario(b, int64(i%5))
			res, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{Hitting: opts})
			if err != nil {
				b.Fatal(err)
			}
			if res.Feasible {
				relays = float64(res.NumRelays())
			}
		}
		b.ReportMetric(relays, "relays")
	}
	b.Run("greedy-only", func(b *testing.B) {
		run(b, hitting.Options{LocalSearch: false, MaxSwap: 1})
	})
	b.Run("local-search", func(b *testing.B) {
		run(b, hitting.DefaultOptions())
	})
}

// Ablation: RS Sliding Movement on/off at a strict threshold. Reports the
// fraction of instances each variant solves; sliding is the paper's rescue
// mechanism for SNR-tight instances.
func BenchmarkAblationSliding(b *testing.B) {
	const strictSNR = -11.0
	run := func(b *testing.B, skip bool) {
		feasible, total := 0, 0
		for i := 0; i < b.N; i++ {
			for seed := int64(0); seed < 5; seed++ {
				sc, err := scenario.Generate(scenario.GenConfig{
					FieldSide: 500, NumSS: 30, NumBS: 4, SNRdB: strictSNR, Seed: seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{SkipSliding: skip})
				if err != nil {
					b.Fatal(err)
				}
				total++
				if res.Feasible {
					feasible++
				}
			}
		}
		b.ReportMetric(float64(feasible)/float64(total), "feasible-rate")
	}
	b.Run("no-sliding", func(b *testing.B) { run(b, true) })
	b.Run("sliding", func(b *testing.B) { run(b, false) })
}

// Ablation: PRO's stuck-resolution rule (min delta vs first-found).
// Reports total power; the min-delta rule should not be worse.
func BenchmarkAblationProOrder(b *testing.B) {
	run := func(b *testing.B, opts lower.PROOptions) {
		power := 0.0
		for i := 0; i < b.N; i++ {
			sc := benchScenario(b, int64(i%5))
			res, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{})
			if err != nil || !res.Feasible {
				b.Fatal("coverage failed")
			}
			alloc, err := lower.PROWithOptions(context.Background(), sc, res, opts)
			if err != nil {
				b.Fatal(err)
			}
			power = alloc.Total
		}
		b.ReportMetric(power, "power")
	}
	b.Run("min-delta", func(b *testing.B) { run(b, lower.PROOptions{}) })
	b.Run("naive-order", func(b *testing.B) { run(b, lower.PROOptions{NaiveStuckOrder: true}) })
}

// Ablation: zone-size cap for the ILP decomposition (solution quality vs
// solve time; Section IV-A's tractability dial).
func BenchmarkAblationZones(b *testing.B) {
	for _, cap := range []int{6, 10, 14} {
		cap := cap
		b.Run(map[int]string{6: "cap-6", 10: "cap-10", 14: "cap-14"}[cap], func(b *testing.B) {
			relays := 0.0
			for i := 0; i < b.N; i++ {
				sc := benchScenario(b, 3)
				res, err := lower.IAC(context.Background(), sc, lower.ILPOptions{MaxZoneSS: cap})
				if err != nil {
					b.Fatal(err)
				}
				if res.Feasible {
					relays = float64(res.NumRelays())
				}
			}
			b.ReportMetric(relays, "relays")
		})
	}
}

// Ablation: branch-and-bound strategy (node order x rounding heuristic) on
// the IAC coverage model. Reports relay count; all strategies must agree
// on feasible instances, so the metric of interest is ns/op.
func BenchmarkAblationBnBStrategy(b *testing.B) {
	run := func(b *testing.B, opts milp.Options) {
		relays := 0.0
		for i := 0; i < b.N; i++ {
			sc := benchScenario(b, 3)
			res, err := lower.IAC(context.Background(), sc, lower.ILPOptions{MILP: opts})
			if err != nil {
				b.Fatal(err)
			}
			if res.Feasible {
				relays = float64(res.NumRelays())
			}
		}
		b.ReportMetric(relays, "relays")
	}
	b.Run("dfs-rounding", func(b *testing.B) { run(b, milp.Options{}) })
	b.Run("dfs-no-rounding", func(b *testing.B) { run(b, milp.Options{DisableRounding: true}) })
	b.Run("best-bound", func(b *testing.B) { run(b, milp.Options{Order: milp.OrderBestBound}) })
	b.Run("first-fractional", func(b *testing.B) { run(b, milp.Options{Branch: milp.BranchFirstFractional}) })
}

// Micro-benchmarks of the hot substrates.

func BenchmarkSAMC30(b *testing.B) {
	sc := benchScenario(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMBMC30(b *testing.B) {
	sc := benchScenario(b, 1)
	cover, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{})
	if err != nil || !cover.Feasible {
		b.Fatal("coverage failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := upper.MBMC(context.Background(), sc, cover); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRO30(b *testing.B) {
	sc := benchScenario(b, 1)
	cover, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{})
	if err != nil || !cover.Feasible {
		b.Fatal("coverage failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lower.PRO(context.Background(), sc, cover); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexCovering(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem()
		const n = 40
		for i := 0; i < n; i++ {
			v := p.AddVariable("x", 1+float64(i%7))
			if err := p.SetUpperBound(v, 1); err != nil {
				b.Fatal(err)
			}
		}
		for k := 0; k < 30; k++ {
			var terms []lp.Term
			for i := k % 3; i < n; i += 3 + k%4 {
				terms = append(terms, lp.Term{Var: i, Coef: 1})
			}
			if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := build().Solve()
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve failed: %v %v", err, sol)
		}
	}
}

func BenchmarkHittingSet(b *testing.B) {
	sc := benchScenario(b, 2)
	disks := sc.FeasibleCircles()
	cands := geom.IntersectionCandidates(disks)
	inst := &hitting.Instance{Disks: disks, Candidates: cands, Tol: 1e-7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Solve(hitting.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZonePartition(b *testing.B) {
	sc := benchScenario(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lower.ZonePartition(sc); err != nil {
			b.Fatal(err)
		}
	}
}
