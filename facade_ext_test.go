package sagrelay

import (
	"context"
	"testing"
)

func TestFacadeDistanceCoverageAndViolations(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 500, NumSS: 12, NumBS: 2, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DistanceCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("distance coverage infeasible")
	}
	v, err := SNRViolations(context.Background(), sc, res)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > sc.NumSS() {
		t.Errorf("violations = %d", v)
	}
}

func TestFacadeDualCoverage(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 500, NumSS: 12, NumBS: 2, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := DualCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dual.Feasible {
		t.Skip("2-fold coverage uncoverable on this draw")
	}
	if err := dual.VerifyDual(sc); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRunTraffic(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 400, NumSS: 8, NumBS: 2, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Skip("infeasible draw")
	}
	rep, err := RunTraffic(context.Background(), sc, sol, TrafficOptions{Slots: 100, ArrivalRate: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated == 0 || rep.DeliveryRatio() < 0 || rep.DeliveryRatio() > 1 {
		t.Errorf("traffic report implausible: %+v", rep)
	}
}
