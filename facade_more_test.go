package sagrelay

import (
	"context"
	"path/filepath"
	"testing"
)

func TestFacadeTrafficGeneration(t *testing.T) {
	sc, err := GenerateTraffic(TrafficConfig{
		FieldSide: 500, NumSS: 10, NumBS: 2, Seed: 3,
		Classes: []TrafficClass{
			{Name: "heavy", Rate: 8, Bandwidth: 1, Weight: 1},
			{Name: "light", Rate: 5, Bandwidth: 1, Weight: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSS() != 10 {
		t.Fatalf("generated %d subscribers", sc.NumSS())
	}
	// Heavier demand -> shorter feasible distance; both classes clamp under
	// half the field.
	for _, s := range sc.Subscribers {
		if s.DistReq <= 0 || s.DistReq > 250 {
			t.Errorf("distance requirement %v out of range", s.DistReq)
		}
	}
}

func TestFacadeClusteredGeneration(t *testing.T) {
	sc, err := GenerateClustered(ClusterConfig{
		FieldSide: 600, NumClusters: 2, NumSS: 12, NumBS: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEvaluateAndFailures(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 500, NumSS: 12, NumBS: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Skip("infeasible draw")
	}
	rep, err := Evaluate(context.Background(), sc, sol, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Subscribers) != 12 {
		t.Errorf("evaluated %d subscribers", len(rep.Subscribers))
	}
	fr, err := InjectFailure(context.Background(), sc, sol, Failure{Kind: FailCoverage, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.LostSubscribers) == 0 {
		t.Error("failing a coverage relay lost nobody")
	}
	worst, err := WorstSingleFailure(context.Background(), sc, sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(worst.LostSubscribers) < len(fr.LostSubscribers) {
		t.Error("worst failure weaker than an arbitrary one")
	}
}

func TestFacadeRenderSVGFile(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 5, NumBS: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := RenderSVGFile(sc, nil, VizStyle{}, path); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeIACGAC(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 6, NumBS: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	iac, err := IAC(context.Background(), sc, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gac, err := GAC(context.Background(), sc, ILPOptions{GridSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if iac.Feasible && gac.Feasible && iac.NumRelays() > gac.NumRelays()+2 {
		t.Errorf("IAC %d much worse than GAC %d", iac.NumRelays(), gac.NumRelays())
	}
}
