module sagrelay

go 1.22
