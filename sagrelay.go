// Package sagrelay is a Go implementation of "Signal-Aware Green Wireless
// Relay Network Design" (Gao, Tang, Sheng, Zhang, Wang — IEEE ICDCS 2013).
//
// It solves the SNR-Aware Green (SAG) relay problem: given subscriber
// stations with capacity (distance) and SNR requirements and a set of base
// stations, place a minimum number of relay stations forming a two-tier
// network — coverage relays serving subscribers on the lower tier,
// connectivity relays forwarding to base stations on the upper tier — and
// allocate transmission powers minimizing the total power cost.
//
// The package exposes the paper's algorithms directly:
//
//	SAMC     SNR Aware Minimum Coverage (Alg. 1), with Zone Partition,
//	         Coverage Link Escape and RS Sliding Movement inside
//	IAC/GAC  the ILPQC coverage formulations (eqs. 3.1-3.5) over
//	         intersection / grid candidates, solved by built-in
//	         branch-and-bound (no external solver needed)
//	PRO      Power Reduction Optimization (Alg. 6) and the exact LPQC
//	         optimum for the lower tier
//	MBMC     Multiple Base station Minimum Connectivity (Alg. 7), plus the
//	         MUST single-base-station baseline of DARP
//	UCPO     Upper-tier Connectivity Power Optimization (Alg. 8)
//	SAG      the combined pipeline (Alg. 9)
//
// Quick start:
//
//	sc, err := sagrelay.Generate(sagrelay.GenConfig{
//		FieldSide: 500, NumSS: 30, NumBS: 4, Seed: 1,
//	})
//	if err != nil { ... }
//	sol, err := sagrelay.SAG(context.Background(), sc, sagrelay.Config{})
//	if err != nil { ... }
//	fmt.Println(sol.TotalRelays(), sol.PTotal)
//
// Every solve function takes a context.Context first: cancellation and
// deadlines propagate down to the branch-and-bound node loops and simplex
// pivot iterations, and a context armed with WithTrace collects a per-stage
// span tree on Solution.Trace.
//
// The experiment harness regenerating every table and figure of the
// paper's evaluation lives behind RunExperiment and cmd/sagbench.
package sagrelay

import (
	"context"
	"fmt"

	"sagrelay/internal/core"
	"sagrelay/internal/experiment"
	"sagrelay/internal/geom"
	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
	"sagrelay/internal/radio"
	"sagrelay/internal/scenario"
	"sagrelay/internal/sim"
	"sagrelay/internal/upper"
	"sagrelay/internal/viz"
)

// Geometry.
type (
	// Point is a planar location.
	Point = geom.Point
	// Circle is a feasible-coverage circle.
	Circle = geom.Circle
	// Rect is an axis-aligned rectangle (the playing field).
	Rect = geom.Rect
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// SquareField returns the side x side field centred at the origin.
func SquareField(side float64) Rect { return geom.SquareField(side) }

// Radio model.
type (
	// RadioModel is the two-ray ground path-loss model (eq. 2.1).
	RadioModel = radio.Model
)

// DefaultRadioModel returns the evaluation's radio parameters.
func DefaultRadioModel() RadioModel { return radio.DefaultModel() }

// DBToLinear converts decibels to a linear power ratio.
func DBToLinear(db float64) float64 { return radio.DBToLinear(db) }

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(r float64) float64 { return radio.LinearToDB(r) }

// Scenario model.
type (
	// Scenario is a problem instance (field, subscribers, base stations,
	// radio model, power and SNR parameters).
	Scenario = scenario.Scenario
	// Subscriber is a subscriber station with a distance requirement.
	Subscriber = scenario.Subscriber
	// BaseStation is a macro base station.
	BaseStation = scenario.BaseStation
	// GenConfig configures the uniform scenario generator (Section IV-A).
	GenConfig = scenario.GenConfig
	// TrafficClass is a rate-based demand class (Section II-A front end).
	TrafficClass = scenario.TrafficClass
	// TrafficConfig generates scenarios from traffic classes.
	TrafficConfig = scenario.TrafficConfig
	// ClusterConfig generates clustered (non-uniform) workloads.
	ClusterConfig = scenario.ClusterConfig
)

// Generate builds a seeded random scenario per the paper's evaluation
// setup.
func Generate(cfg GenConfig) (*Scenario, error) { return scenario.Generate(cfg) }

// GenerateTraffic builds a scenario whose distance requirements are
// derived from rate-based traffic classes via the capacity-to-distance
// transformation of Section II-A.
func GenerateTraffic(cfg TrafficConfig) (*Scenario, error) {
	return scenario.GenerateTraffic(cfg)
}

// GenerateClustered builds a clustered workload (retail strips, malls)
// instead of the uniform evaluation default.
func GenerateClustered(cfg ClusterConfig) (*Scenario, error) {
	return scenario.GenerateClustered(cfg)
}

// LoadScenario reads a scenario from a JSON file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// SaveScenario writes a scenario to a JSON file.
func SaveScenario(sc *Scenario, path string) error { return scenario.Save(sc, path) }

// Lower tier (LCRA).
type (
	// CoverageResult is a lower-tier placement.
	CoverageResult = lower.Result
	// CoverageRelay is a placed coverage relay.
	CoverageRelay = lower.Relay
	// CoveragePowerAllocation assigns powers to coverage relays.
	CoveragePowerAllocation = lower.PowerAllocation
	// SAMCOptions tunes the SAMC heuristic.
	SAMCOptions = lower.SAMCOptions
	// ILPOptions tunes the IAC/GAC solvers.
	ILPOptions = lower.ILPOptions
)

// SAMC runs the SNR Aware Minimum Coverage heuristic (Alg. 1).
func SAMC(ctx context.Context, sc *Scenario, opts SAMCOptions) (*CoverageResult, error) {
	return lower.SAMC(ctx, sc, opts)
}

// IAC solves the coverage ILP over intersection candidates (Fig. 2a).
func IAC(ctx context.Context, sc *Scenario, opts ILPOptions) (*CoverageResult, error) {
	return lower.IAC(ctx, sc, opts)
}

// GAC solves the coverage ILP over grid candidates (Fig. 2b).
func GAC(ctx context.Context, sc *Scenario, opts ILPOptions) (*CoverageResult, error) {
	return lower.GAC(ctx, sc, opts)
}

// PRO runs Power Reduction Optimization (Alg. 6) on a coverage result.
func PRO(ctx context.Context, sc *Scenario, res *CoverageResult) (*CoveragePowerAllocation, error) {
	return lower.PRO(ctx, sc, res)
}

// OptimalCoveragePower solves the exact LPQC power optimum (eqs. 3.6-3.9).
func OptimalCoveragePower(ctx context.Context, sc *Scenario, res *CoverageResult) (*CoveragePowerAllocation, error) {
	return lower.OptimalPower(ctx, sc, res)
}

// ZonePartition runs Algorithm 2, returning subscriber-index groups.
func ZonePartition(sc *Scenario) ([][]int, error) { return lower.ZonePartition(sc) }

// Upper tier (UCRA).
type (
	// ConnectivityResult is an upper-tier plan.
	ConnectivityResult = upper.Result
	// ConnectivityRelay is a placed connectivity relay.
	ConnectivityRelay = upper.ConnRelay
	// TreeEdge is one logical connectivity-tree edge.
	TreeEdge = upper.TreeEdge
	// ConnectivityPowerAllocation assigns powers to connectivity relays.
	ConnectivityPowerAllocation = upper.PowerAllocation
)

// MBMC runs Multiple Base station Minimum Connectivity (Alg. 7).
func MBMC(ctx context.Context, sc *Scenario, cover *CoverageResult) (*ConnectivityResult, error) {
	return upper.MBMC(ctx, sc, cover)
}

// MUST runs the single-base-station baseline of [1].
func MUST(ctx context.Context, sc *Scenario, cover *CoverageResult, bsIndex int) (*ConnectivityResult, error) {
	return upper.MUST(ctx, sc, cover, bsIndex)
}

// UCPO runs Upper-tier Connectivity Power Optimization (Alg. 8).
func UCPO(ctx context.Context, sc *Scenario, cover *CoverageResult, conn *ConnectivityResult) (*ConnectivityPowerAllocation, error) {
	return upper.UCPO(ctx, sc, cover, conn)
}

// Pipelines.
type (
	// Config selects and tunes the pipeline stages.
	Config = core.Config
	// Solution is a fully solved two-tier deployment.
	Solution = core.Solution
	// CoverageMethod selects the lower-tier algorithm.
	CoverageMethod = core.CoverageMethod
	// ConnectivityMethod selects the upper-tier algorithm.
	ConnectivityMethod = core.ConnectivityMethod
	// PowerMethod selects a power stage.
	PowerMethod = core.PowerMethod
)

// Pipeline stage identifiers re-exported from the core package.
const (
	CoverSAMC     = core.CoverSAMC
	CoverIAC      = core.CoverIAC
	CoverGAC      = core.CoverGAC
	ConnMBMC      = core.ConnMBMC
	ConnMUST      = core.ConnMUST
	PowerBaseline = core.PowerBaseline
	PowerGreen    = core.PowerGreen
	PowerOptimal  = core.PowerOptimal
)

// SAG runs the full SNR-Aware Green pipeline (Alg. 9).
func SAG(ctx context.Context, sc *Scenario, cfg Config) (*Solution, error) {
	return core.SAG(ctx, sc, cfg)
}

// DARP runs an "X+DARP" baseline pipeline (Section IV-D).
func DARP(ctx context.Context, sc *Scenario, coverage CoverageMethod, cfg Config) (*Solution, error) {
	return core.DARP(ctx, sc, coverage, cfg)
}

// RunPipeline executes an arbitrary stage configuration.
func RunPipeline(ctx context.Context, sc *Scenario, cfg Config) (*Solution, error) {
	return core.Run(ctx, sc, cfg)
}

// Observability.
type (
	// Trace collects a span tree for one solve. Arm a context with
	// WithTrace before calling SAG/RunPipeline and the finished tree
	// appears on Solution.Trace.
	Trace = obs.Trace
	// Span is one timed region of a trace.
	Span = obs.Span
	// SpanDoc is the JSON-serializable snapshot of a span tree
	// (Trace.Doc).
	SpanDoc = obs.SpanDoc
)

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// WithTrace arms ctx so solve functions record spans into t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.WithTrace(ctx, t)
}

// Experiments.
type (
	// ExperimentConfig controls repetition and solver budgets.
	ExperimentConfig = experiment.Config
	// ResultTable is an experiment artifact (rows of averaged series).
	ResultTable = experiment.Table
)

// RunExperiment regenerates the identified paper artifact ("fig3a" ...
// "fig7c", "table2"). The context cancels in-flight runs; an explicit
// ExperimentConfig.Ctx takes precedence for backward compatibility.
func RunExperiment(ctx context.Context, id string, cfg ExperimentConfig) (*ResultTable, error) {
	if cfg.Ctx == nil {
		cfg.Ctx = ctx
	}
	return experiment.Run(id, cfg)
}

// ExperimentIDs lists the available artifact IDs.
func ExperimentIDs() []string { return experiment.IDs() }

// Deployment evaluation and failure injection.
type (
	// SimOptions configures link-level evaluation.
	SimOptions = sim.Options
	// SimReport is a whole-deployment link-level evaluation.
	SimReport = sim.Report
	// SubscriberReport is one subscriber's end-to-end evaluation.
	SubscriberReport = sim.SubscriberReport
	// Failure specifies a relay to fail.
	Failure = sim.Failure
	// FailureKind selects the failed tier.
	FailureKind = sim.FailureKind
	// FailureReport quantifies a failure's impact.
	FailureReport = sim.FailureReport
	// TrafficOptions configure the slotted downlink traffic simulation.
	TrafficOptions = sim.TrafficOptions
	// TrafficReport aggregates a traffic simulation run.
	TrafficReport = sim.TrafficReport
)

// Failure kinds re-exported from the sim package.
const (
	FailCoverage     = sim.FailCoverage
	FailConnectivity = sim.FailConnectivity
)

// ctxEntry is the shared entry check for facade functions whose internals
// are fast, bounded computations: honour an already-cancelled context
// without threading ctx through layers that would never poll it.
func ctxEntry(ctx context.Context, what string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sagrelay: %s: %w", what, err)
	}
	return nil
}

// Evaluate walks every subscriber's path in a solved deployment and
// reports per-hop SNRs, Shannon capacities and end-to-end bottlenecks.
func Evaluate(ctx context.Context, sc *Scenario, sol *Solution, opts SimOptions) (*SimReport, error) {
	if err := ctxEntry(ctx, "evaluate"); err != nil {
		return nil, err
	}
	return sim.Evaluate(sc, sol, opts)
}

// InjectFailure computes which subscribers lose service when one relay
// fails.
func InjectFailure(ctx context.Context, sc *Scenario, sol *Solution, f Failure) (*FailureReport, error) {
	if err := ctxEntry(ctx, "inject failure"); err != nil {
		return nil, err
	}
	return sim.InjectFailure(sc, sol, f)
}

// WorstSingleFailure scans all relays and returns the most damaging single
// failure.
func WorstSingleFailure(ctx context.Context, sc *Scenario, sol *Solution) (*FailureReport, error) {
	if err := ctxEntry(ctx, "worst single failure"); err != nil {
		return nil, err
	}
	return sim.WorstSingleFailure(sc, sol)
}

// RunTraffic simulates slotted store-and-forward downlink traffic over a
// solved deployment and reports delivery ratios, delays and queue
// pressure.
func RunTraffic(ctx context.Context, sc *Scenario, sol *Solution, opts TrafficOptions) (*TrafficReport, error) {
	if err := ctxEntry(ctx, "traffic simulation"); err != nil {
		return nil, err
	}
	return sim.RunTraffic(sc, sol, opts)
}

// Dual coverage (the 802.16j dual-relay MMR architecture of refs [8,9]).
type (
	// DualCoverageResult is a placement where every subscriber has a
	// primary and a backup access relay.
	DualCoverageResult = lower.DualResult
)

// DualCoverage places 2-fold coverage: every subscriber keeps a backup
// access relay, surviving any single coverage-relay failure.
func DualCoverage(ctx context.Context, sc *Scenario, opts SAMCOptions) (*DualCoverageResult, error) {
	return lower.DualCoverage(ctx, sc, opts)
}

// DistanceCoverage runs the DARP [1] lower tier: distance-only coverage
// with no SNR awareness (audit the damage with SNRViolations).
func DistanceCoverage(ctx context.Context, sc *Scenario, opts SAMCOptions) (*CoverageResult, error) {
	return lower.DistanceCoverage(ctx, sc, opts)
}

// SNRViolations counts subscribers whose Definition 2 SNR falls below the
// scenario threshold under a coverage result at PMax.
func SNRViolations(ctx context.Context, sc *Scenario, res *CoverageResult) (int, error) {
	return lower.SNRViolations(ctx, sc, res)
}

// Visualization.
type (
	// VizStyle configures SVG rendering.
	VizStyle = viz.Style
)

// RenderSVG draws a scenario and optional solution as an SVG document.
func RenderSVG(sc *Scenario, sol *Solution, style VizStyle) (string, error) {
	return viz.Render(sc, sol, style)
}

// RenderSVGFile draws to a file.
func RenderSVGFile(sc *Scenario, sol *Solution, style VizStyle, path string) error {
	return viz.RenderToFile(sc, sol, style, path)
}
